//! Engine integration tests: serializability under real concurrency for
//! every protocol, deferred-write semantics, blocking, deadlocks, and the
//! composite abort-all epoch.

use mdts_model::ItemId;
use mdts_storage::Store;

use crate::cc::{BasicToCc, CompositeCc, ConcurrencyControl, IntervalCc, MtCc, OccCc, TwoPlCc};
use crate::db::Database;
use crate::workload::{run_bank_mix, BankConfig};

fn all_protocols() -> Vec<Box<dyn ConcurrencyControl>> {
    vec![
        Box::new(MtCc::new(3)),
        Box::new(CompositeCc::new(3)),
        Box::new(TwoPlCc::new()),
        Box::new(BasicToCc::new(false)),
        Box::new(BasicToCc::new(true)),
        Box::new(OccCc::new()),
        Box::new(IntervalCc::new()),
    ]
}

#[test]
fn bank_invariant_holds_under_every_protocol() {
    let cfg = BankConfig {
        accounts: 16,
        threads: 4,
        txns_per_thread: 100,
        zipf_theta: 0.8,
        ..Default::default()
    };
    for cc in all_protocols() {
        let report = run_bank_mix(cc, &cfg);
        assert!(
            report.invariant_holds(),
            "{}: total {} != expected {} (metrics {:?})",
            report.protocol,
            report.final_total,
            report.expected_total,
            report.metrics
        );
        assert!(report.metrics.commits > 0, "{}: nothing committed", report.protocol);
    }
}

#[test]
fn uncommitted_writes_are_invisible() {
    let db: Database<i64> = Database::with_store(Box::new(MtCc::new(2)), Store::with_items(1, 7));
    // A transaction writes but never commits (closure aborts by running
    // out of retries after a forced user-side bail).
    let _: Result<(), _> = db.run(0, |tx| {
        tx.write(ItemId(0), 999)?;
        // Check read-your-writes inside the transaction…
        assert_eq!(tx.read(ItemId(0))?, Some(999));
        // …then bail out before commit.
        Err(crate::db::Aborted)
    });
    assert_eq!(db.snapshot()[&ItemId(0)], 7, "abandoned workspace never applied");
}

#[test]
fn committed_writes_are_visible_and_durable() {
    let db: Database<i64> = Database::with_store(Box::new(MtCc::new(2)), Store::with_items(2, 0));
    db.run(4, |tx| {
        let v = tx.read(ItemId(0))?.unwrap_or(0);
        tx.write(ItemId(0), v + 5)?;
        tx.write(ItemId(1), 11)?;
        Ok(())
    })
    .unwrap();
    let snap = db.snapshot();
    assert_eq!(snap[&ItemId(0)], 5);
    assert_eq!(snap[&ItemId(1)], 11);
    assert_eq!(db.metrics().commits, 1);
}

#[test]
fn lost_update_is_prevented_by_every_protocol() {
    // Two threads increment the same counter 50 times each; a lost update
    // would leave the counter below 100.
    for cc in all_protocols() {
        let db: Database<i64> = Database::with_store(cc, Store::with_items(1, 0));
        let name = db.protocol_name();
        std::thread::scope(|s| {
            for _ in 0..2 {
                let db = db.clone();
                s.spawn(move || {
                    for _ in 0..50 {
                        db.run(1000, |tx| {
                            let v = tx.read(ItemId(0))?.unwrap_or(0);
                            tx.write(ItemId(0), v + 1)?;
                            Ok(())
                        })
                        .expect("increment must eventually commit");
                    }
                });
            }
        });
        assert_eq!(db.snapshot()[&ItemId(0)], 100, "{name}: lost update");
    }
}

#[test]
fn two_pl_blocks_and_wakes() {
    let db: Database<i64> = Database::with_store(Box::new(TwoPlCc::new()), Store::with_items(1, 0));
    // Writer thread holds the lock briefly; reader must block then proceed.
    std::thread::scope(|s| {
        let db2 = db.clone();
        s.spawn(move || {
            db2.run(8, |tx| {
                let v = tx.read(ItemId(0))?.unwrap_or(0);
                tx.write(ItemId(0), v + 1)?;
                std::thread::sleep(std::time::Duration::from_millis(20));
                Ok(())
            })
            .unwrap();
        });
        let db3 = db.clone();
        s.spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(5));
            db3.run(8, |tx| {
                let _ = tx.read(ItemId(0))?;
                Ok(())
            })
            .unwrap();
        });
    });
    assert_eq!(db.metrics().commits, 2);
}

#[test]
fn deadlock_victims_restart_and_finish() {
    // Classic crossing transfers: T_a: x→y, T_b: y→x, repeatedly.
    let db: Database<i64> =
        Database::with_store(Box::new(TwoPlCc::new()), Store::with_items(2, 50));
    std::thread::scope(|s| {
        for (a, b) in [(0u32, 1u32), (1, 0)] {
            let db = db.clone();
            s.spawn(move || {
                for _ in 0..30 {
                    db.run(1000, |tx| {
                        let va = tx.read(ItemId(a))?.unwrap_or(0);
                        let vb = tx.read(ItemId(b))?.unwrap_or(0);
                        tx.write(ItemId(a), va - 1)?;
                        tx.write(ItemId(b), vb + 1)?;
                        Ok(())
                    })
                    .expect("transfer must eventually commit");
                }
            });
        }
    });
    let snap = db.snapshot();
    assert_eq!(snap[&ItemId(0)] + snap[&ItemId(1)], 100, "money conserved");
    assert_eq!(db.metrics().commits, 60);
}

#[test]
fn thomas_rule_counts_ignored_writes() {
    // Single-threaded deterministic sequence is hard to force through the
    // retry driver; assert at the workload level instead: the TO+Thomas
    // engine stays correct and reports the counter.
    let cfg =
        BankConfig { threads: 4, txns_per_thread: 150, zipf_theta: 1.2, ..Default::default() };
    let report = run_bank_mix(Box::new(BasicToCc::new(true)), &cfg);
    assert!(report.invariant_holds(), "{:?}", report);
}

#[test]
fn composite_abort_all_recovers() {
    // MT(1+) under heavy contention triggers all-subprotocols-stopped
    // regularly; the epoch mechanism must keep the invariant intact.
    let cfg = BankConfig {
        accounts: 4,
        threads: 4,
        txns_per_thread: 60,
        zipf_theta: 1.0,
        max_restarts: 5000,
        ..Default::default()
    };
    let report = run_bank_mix(Box::new(CompositeCc::new(1)), &cfg);
    assert!(report.invariant_holds(), "{:?}", report);
    assert!(report.metrics.commits > 0);
}

#[test]
fn retries_exhausted_is_reported() {
    let db: Database<i64> = Database::with_store(Box::new(MtCc::new(2)), Store::with_items(1, 0));
    let err =
        db.run(2, |_tx| -> Result<(), crate::db::Aborted> { Err(crate::db::Aborted) }).unwrap_err();
    assert_eq!(err, crate::db::TxError::RetriesExhausted);
    assert_eq!(db.metrics().commits, 0);
}

#[test]
fn mt_engine_is_faster_to_accept_than_restart_heavy_protocols_on_example1() {
    // Sanity: the MT(2) engine commits Example 1's interleaving without
    // any restarts when driven single-threaded in that exact order.
    let db: Database<i64> = Database::with_store(Box::new(MtCc::new(2)), Store::with_items(3, 0));
    // T1: W[x] W[y]; T3: R[x] W[y later]... replay as three transactions
    // in the paper's operation order is inherently interleaved; here we
    // just confirm sequential transactions never restart.
    for _ in 0..5 {
        db.run(0, |tx| {
            let v = tx.read(ItemId(0))?.unwrap_or(0);
            tx.write(ItemId(0), v + 1)?;
            Ok(())
        })
        .unwrap();
    }
    let m = db.metrics();
    assert_eq!(m.commits, 5);
    assert_eq!(m.aborts, 0);
}

// ---------------------------------------------------------------------
// Multiversion serving path (MV-MT(k), ISSUE 6)
// ---------------------------------------------------------------------

#[test]
fn mvto_baseline_holds_invariant() {
    let cfg =
        BankConfig { threads: 4, txns_per_thread: 150, zipf_theta: 0.8, ..Default::default() };
    let report = run_bank_mix(Box::new(crate::cc::MvToCc::new()), &cfg);
    assert!(report.invariant_holds(), "{report:?}");
    assert!(report.metrics.commits > 0);
}

#[test]
fn snapshot_reads_never_abort_and_keep_the_invariant() {
    let cfg = BankConfig {
        accounts: 16,
        threads: 4,
        txns_per_thread: 250,
        zipf_theta: 1.0,
        read_only_fraction: 0.5,
        scan_len: 16, // full-table audits against hot writers
        ..Default::default()
    };
    let report = crate::workload::run_bank_mix_multiversion(4, &cfg);
    assert!(report.invariant_holds(), "{report:?}");
    assert!(report.metrics.snapshot_txns > 0, "snapshot lane never exercised: {report:?}");
    assert!(report.metrics.snapshot_reads >= report.metrics.snapshot_txns * 16);
    // Never-abort: every abort/restart must be attributable to the
    // update lane; the snapshot lane adds commits without adding aborts.
    assert_eq!(report.gave_up, 0, "a read-only transaction gave up: {report:?}");
}

#[test]
fn snapshot_scan_is_transactionally_consistent() {
    // Writers preserve a total-sum invariant; any snapshot scan must see
    // exactly that total even while transfers are mid-flight. A
    // single-version read-committed scan would fail this regularly.
    let accounts = 8u32;
    let per = 100i64;
    let db: Database<i64> = Database::with_store_multiversion_traced(
        crate::cc::ShardedMtCc::new(4),
        Store::with_items(accounts, per),
        mdts_trace::TraceSink::disabled(),
    );
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        for t in 0..3usize {
            let db = db.clone();
            let stop = &stop;
            scope.spawn(move || {
                let mut i = 0u32;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let src = ItemId((i + t as u32) % accounts);
                    let dst = ItemId((i + t as u32 + 1) % accounts);
                    let _ = db.run(1_000, |tx| {
                        let a = tx.read(src)?.unwrap_or(0);
                        let b = tx.read(dst)?.unwrap_or(0);
                        tx.write(src, a - 1)?;
                        tx.write(dst, b + 1)?;
                        Ok(())
                    });
                    i += 1;
                }
            });
        }
        for _ in 0..2000 {
            let total: i64 = db
                .run_read_only(|tx| (0..accounts).map(|a| tx.read(ItemId(a)).unwrap_or(per)).sum());
            assert_eq!(total, accounts as i64 * per, "snapshot saw a torn transfer");
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });
}

#[test]
fn gc_never_reclaims_a_version_visible_to_a_live_snapshot() {
    // A long-running snapshot scan overlapped by many writers: pruning
    // must keep each reader's pivot version, so every read still returns
    // a value from the reader's consistent position (the totals check
    // proves the served versions stayed mutually consistent).
    let accounts = 4u32;
    let per = 50i64;
    let db: Database<i64> = Database::with_store_multiversion_traced(
        crate::cc::ShardedMtCc::new(3),
        Store::with_items(accounts, per),
        mdts_trace::TraceSink::disabled(),
    );
    let churn = |rounds: u32| {
        for _ in 0..rounds {
            for a in 0..accounts {
                db.run(1_000, |w| {
                    let src = ItemId(a);
                    let dst = ItemId((a + 1) % accounts);
                    let x = w.read(src)?.unwrap_or(0);
                    let y = w.read(dst)?.unwrap_or(0);
                    w.write(src, x - 1)?;
                    w.write(dst, y + 1)?;
                    Ok(())
                })
                .unwrap();
            }
        }
    };
    // Phase 1: no live snapshots — the watermark is unbounded, so chains
    // past the threshold must actually shed old versions.
    churn(40);
    assert!(db.mv_pruned() > 0, "pruning never triggered; threshold too high for the test");
    // Phase 2: pin a snapshot with one read, churn far past the
    // threshold again, and check the remaining reads still form a
    // consistent cut with the first — GC kept every reader-visible pivot.
    db.run_read_only(|tx| {
        let first = tx.read(ItemId(0)).unwrap_or(per);
        churn(40);
        let rest: i64 = (1..accounts).map(|a| tx.read(ItemId(a)).unwrap_or(per)).sum();
        assert_eq!(first + rest, accounts as i64 * per, "GC broke the snapshot's cut");
    });
}

#[test]
fn mv_trace_is_audit_certified() {
    use mdts_trace::{audit, TraceBuffer, TraceSink};
    let buffer = TraceBuffer::journal();
    let mut cc = crate::cc::ShardedMtCc::new(3);
    cc.attach_trace(TraceSink::to(&buffer));
    let db: Database<i64> = Database::with_store_multiversion_traced(
        cc,
        Store::with_items(8, 100),
        TraceSink::to(&buffer),
    );
    std::thread::scope(|scope| {
        for t in 0..4usize {
            let db = db.clone();
            scope.spawn(move || {
                for i in 0..60u32 {
                    if i % 3 == 0 {
                        let sum = db.run_read_only(|tx| {
                            (0..8).map(|a| tx.read(ItemId(a)).unwrap_or(0)).sum::<i64>()
                        });
                        assert_eq!(sum, 800);
                    } else {
                        let src = ItemId((i + t as u32) % 8);
                        let dst = ItemId((i + t as u32 + 3) % 8);
                        let _ = db.run(1_000, |tx| {
                            let a = tx.read(src)?.unwrap_or(0);
                            let b = tx.read(dst)?.unwrap_or(0);
                            tx.write(src, a - 1)?;
                            tx.write(dst, b + 1)?;
                            Ok(())
                        });
                    }
                }
            });
        }
    });
    let trace = buffer.drain();
    let report = audit(&trace, 3);
    assert!(report.violations.is_empty(), "audit violations: {:?}", report.violations);
    assert!(report.version_reads > 0, "no version reads audited");
}

// ---------------------------------------------------------------------
// MV-MT(k) property tests: the concurrent serving path vs. the
// sequential `MvMtScheduler` oracle (ISSUE 6, satellite 3)
// ---------------------------------------------------------------------

mod mv_props {
    use std::sync::mpsc;

    use mdts_core::MvMtScheduler;
    use mdts_model::{ItemId, Log, OpKind, Operation, TxId};
    use mdts_storage::Store;
    use mdts_trace::{audit, TraceBuffer, TraceSink};
    use proptest::prelude::*;

    use crate::cc::ShardedMtCc;
    use crate::db::Database;

    const ITEMS: u32 = 4;

    #[derive(Clone, Debug)]
    enum MvOp {
        /// A single-write updater transaction `W[i]`.
        Write(u32),
        /// A read-only snapshot transaction scanning the given items.
        Scan(Vec<u32>),
    }

    fn arb_ops() -> impl Strategy<Value = Vec<MvOp>> {
        // The proptest shim has no `prop_oneof!`; a selector column picks
        // the variant (two thirds updaters, one third scans).
        proptest::collection::vec(
            (0u8..3, 0..ITEMS, proptest::collection::vec(0..ITEMS, 1..5)).prop_map(
                |(sel, w, mut scan)| {
                    if sel < 2 {
                        MvOp::Write(w)
                    } else {
                        scan.sort_unstable();
                        scan.dedup();
                        MvOp::Scan(scan)
                    }
                },
            ),
            1..24,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn snapshot_path_matches_sequential_mv_oracle(ops in arb_ops(), k in 2usize..5) {
            // One transaction at a time: single-write updaters and
            // multi-item snapshot scans. Both realizations of MV-MT(k)
            // must accept every such log (no rejects, no restarts), and
            // both reads-from relations must certify against the same
            // serial replay: each scan is a *consistent cut* of the
            // commit order (there is one serial position at which every
            // served version is the item's latest). Exact triple
            // equality is NOT required — which gap a reader slots into
            // depends on incidental `Set` value choices, and the two
            // schedulers pick values differently. The concurrent path is
            // pinned tighter: its boosted reader defines always order it
            // above every committed stamp, so quiescent scans must serve
            // exactly the newest committed version.
            let mut log = Log::new();
            for (i, op) in ops.iter().enumerate() {
                let tx = TxId(i as u32 + 1);
                match op {
                    MvOp::Write(item) => log.push(Operation::write(tx, ItemId(*item))),
                    MvOp::Scan(items) => log.push(Operation::new(
                        tx,
                        OpKind::Read,
                        items.iter().map(|&i| ItemId(i)).collect(),
                    )),
                }
            }
            // The oracle may refuse a write: it orders the writer above
            // the newest version's writer and then its readers in
            // arrival order, so an early small define can collide with a
            // later reader's larger value. The engine orders above the
            // decided-larger holder first (the smaller follows by
            // transitivity), so sequentially it never refuses — compare
            // reads-from only on logs the oracle accepts.
            let oracle = MvMtScheduler::reads_from(&log, k).map(|(_, r)| r);

            // Writers record their log TxId as the stored value, so each
            // engine read names the version writer it was served.
            let db: Database<i64> = Database::with_store_multiversion_traced(
                ShardedMtCc::new(k),
                Store::with_items(ITEMS, 0),
                TraceSink::disabled(),
            );
            let mut got = Vec::new();
            // Last committed writer per item as the driver proceeds: the
            // deterministic spec for the concurrent path's scans.
            let mut newest = vec![TxId::VIRTUAL; ITEMS as usize];
            for (i, op) in ops.iter().enumerate() {
                let tx = TxId(i as u32 + 1);
                match op {
                    MvOp::Write(item) => {
                        let item = ItemId(*item);
                        let value = i64::from(tx.0);
                        db.run(0, |t| {
                            t.write(item, value)?;
                            Ok(())
                        })
                        .expect("a lone updater must never restart");
                        newest[item.index()] = tx;
                    }
                    MvOp::Scan(items) => {
                        let values = db.run_read_only(|t| {
                            items
                                .iter()
                                .map(|&i| t.read(ItemId(i)).unwrap_or(0))
                                .collect::<Vec<_>>()
                        });
                        for (&i, v) in items.iter().zip(values) {
                            let from = TxId(v as u32);
                            prop_assert!(
                                from == newest[i as usize],
                                "quiescent scan not served the newest version: \
                                 T{} read i{i} from T{} (newest committed T{})\n  ops: {ops:?}",
                                tx.0, from.0, newest[i as usize].0
                            );
                            got.push((tx, ItemId(i), from));
                        }
                    }
                }
            }
            if let Some(oracle) = &oracle {
                prop_assert!(
                    got.iter().map(|&(tx, item, _)| (tx, item)).eq(
                        oracle.iter().map(|&(tx, item, _)| (tx, item))),
                    "oracle and engine disagree on the read sequence itself"
                );
            }
            // Serial-replay certification of BOTH reads-from relations:
            // the serialization graph — per-item version-chain edges plus,
            // for every read, `from → scan → successor-of-from` — must be
            // acyclic, i.e. some serial order of the writers serves every
            // scan a consistent cut. (Commit order is NOT that order in
            // general: MT(k) serializes in the vector order.)
            let mut item_writers: Vec<Vec<TxId>> = vec![Vec::new(); ITEMS as usize];
            for (i, op) in ops.iter().enumerate() {
                if let MvOp::Write(item) = op {
                    item_writers[*item as usize].push(TxId(i as u32 + 1));
                }
            }
            for reads in std::iter::once(&got).chain(oracle.as_ref()) {
                let n = ops.len() + 1;
                let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
                let mut indeg = vec![0usize; n];
                let mut edge = |from: usize, to: usize| {
                    if from != to && !succs[from].contains(&to) {
                        succs[from].push(to);
                        indeg[to] += 1;
                    }
                };
                for chain in &item_writers {
                    for pair in chain.windows(2) {
                        edge(pair[0].index(), pair[1].index());
                    }
                }
                for &(tx, item, from) in reads.iter() {
                    let writers = &item_writers[item.index()];
                    let idx = if from.is_virtual() {
                        None
                    } else {
                        Some(writers.iter().position(|&w| w == from).expect("served a writer"))
                    };
                    if idx.is_some() {
                        edge(from.index(), tx.index());
                    }
                    if let Some(&s) = writers.get(idx.map_or(0, |j| j + 1)) {
                        edge(tx.index(), s.index());
                    }
                }
                // Kahn's algorithm: all nodes must drain.
                let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
                let mut drained = 0usize;
                while let Some(v) = queue.pop() {
                    drained += 1;
                    for &w in &succs[v] {
                        indeg[w] -= 1;
                        if indeg[w] == 0 {
                            queue.push(w);
                        }
                    }
                }
                prop_assert!(
                    drained == n,
                    "reads-from admits no serial order (cycle in the serialization graph)\n  \
                     reads: {reads:?}\n  ops: {ops:?}  k: {k}"
                );
            }
        }

        #[test]
        fn overlapping_snapshots_stay_audit_certified(
            steps in proptest::collection::vec(
                // (selector, reader, item, delta): selector 0 is a transfer
                // from `item` to `(item + delta) % ITEMS`, selector 1 a
                // lockstep read of `item` by `reader`.
                (0u8..2, 0..2usize, 0..ITEMS, 1..ITEMS).prop_map(|(sel, r, i, d)| {
                    if sel == 0 {
                        (usize::MAX, i, (i + d) % ITEMS)
                    } else {
                        (r, i, 0)
                    }
                }),
                1..32,
            ),
            k in 2usize..4,
        ) {
            // Two snapshot transactions stay open across the whole step
            // sequence (driven in lockstep over channels) while transfers
            // commit between their reads — the regime where reads are
            // served from *older* versions. Reader-side `Set` edges make
            // the engine's reads-from legitimately diverge from the
            // sequential oracle here, so the bar is the auditor's: the
            // final vector order must certify every served version
            // (reader above its writer, below every later chain writer).
            let buffer = TraceBuffer::journal();
            let mut cc = ShardedMtCc::new(k);
            cc.attach_trace(TraceSink::to(&buffer));
            let db: Database<i64> = Database::with_store_multiversion_traced(
                cc,
                Store::with_items(ITEMS, 100),
                TraceSink::to(&buffer),
            );
            std::thread::scope(|scope| {
                let mut cmds = Vec::new();
                let mut answers = Vec::new();
                for _ in 0..2 {
                    let (cmd_tx, cmd_rx) = mpsc::channel::<Option<ItemId>>();
                    let (ans_tx, ans_rx) = mpsc::channel::<i64>();
                    let db = db.clone();
                    scope.spawn(move || {
                        db.run_read_only(move |t| {
                            while let Ok(Some(item)) = cmd_rx.recv() {
                                ans_tx.send(t.read(item).unwrap_or(0)).unwrap();
                            }
                        });
                    });
                    cmds.push(cmd_tx);
                    answers.push(ans_rx);
                }
                for &(reader, a, b) in &steps {
                    if reader == usize::MAX {
                        let (src, dst) = (ItemId(a), ItemId(b));
                        db.run(1_000, |t| {
                            let x = t.read(src)?.unwrap_or(0);
                            let y = t.read(dst)?.unwrap_or(0);
                            t.write(src, x - 1)?;
                            t.write(dst, y + 1)?;
                            Ok(())
                        })
                        .expect("updater exhausted restarts");
                    } else {
                        cmds[reader].send(Some(ItemId(a))).unwrap();
                        let _ = answers[reader].recv().unwrap();
                    }
                }
                for cmd in &cmds {
                    cmd.send(None).unwrap();
                }
            });
            let trace = buffer.drain();
            let report = audit(&trace, k);
            prop_assert!(report.violations.is_empty(), "audit violations: {:?}", report.violations);
        }
    }
}

// ---------------------------------------------------------------------
// batched admission ≡ serial admission (ISSUE 10, satellite 3)
// ---------------------------------------------------------------------

mod admission_props {
    use mdts_model::ItemId;
    use mdts_storage::Store;
    use proptest::prelude::*;

    use crate::admission::{AdmissionConfig, ADMIT_FOOTPRINT};
    use crate::cc::ShardedMtCc;
    use crate::db::{Database, TxError};

    const ITEMS: u32 = 4;

    /// One transaction: items read, then items written (deduped).
    #[derive(Clone, Debug)]
    struct TxSpec {
        reads: Vec<u32>,
        writes: Vec<u32>,
    }

    fn arb_schedule() -> impl Strategy<Value = Vec<TxSpec>> {
        proptest::collection::vec(
            (proptest::collection::vec(0..ITEMS, 0..3), proptest::collection::vec(0..ITEMS, 0..3))
                .prop_map(|(mut reads, mut writes)| {
                    reads.sort_unstable();
                    reads.dedup();
                    writes.sort_unstable();
                    writes.dedup();
                    TxSpec { reads, writes }
                }),
            1..24,
        )
    }

    /// Every transaction's observable outcome: the values it read on its
    /// committed incarnation, or the terminal error.
    #[allow(clippy::type_complexity)]
    fn drive(db: &Database<i64>, schedule: &[TxSpec]) -> Vec<Result<Vec<i64>, TxError>> {
        schedule
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let footprint: Vec<ItemId> = spec
                    .reads
                    .iter()
                    .chain(spec.writes.iter())
                    .take(ADMIT_FOOTPRINT)
                    .map(|&x| ItemId(x))
                    .collect();
                let value = i as i64 + 1;
                db.run_with_footprint(4, &footprint, |tx| {
                    let mut got = Vec::new();
                    for &item in &spec.reads {
                        got.push(tx.read(ItemId(item))?.unwrap_or(-1));
                    }
                    for &item in &spec.writes {
                        tx.write(ItemId(item), value)?;
                    }
                    Ok(got)
                })
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The staging queue is decision-neutral: driving the same
        /// schedule through a serial-admission database and a
        /// batched-admission one (where prewarm probes run ahead of the
        /// transaction body) must grant and reject identically —
        /// outcome for outcome, read for read, abort for abort — and
        /// leave identical stores. Prewarm only memoizes *decided*
        /// compares, so it can never flip an ordering decision.
        #[test]
        fn batched_admission_matches_serial_decision_for_decision(
            schedule in arb_schedule(),
            k in 2usize..5,
            batch_max in 1usize..5,
        ) {
            let mut serial: Database<i64> = Database::with_store_concurrent(
                Box::new(ShardedMtCc::new(k)),
                Store::with_items(ITEMS, 0),
            );
            serial.configure_admission(None);
            let mut batched: Database<i64> = Database::with_store_concurrent(
                Box::new(ShardedMtCc::new(k)),
                Store::with_items(ITEMS, 0),
            );
            batched.configure_admission(Some(AdmissionConfig { batch_max }));

            let got_serial = drive(&serial, &schedule);
            let got_batched = drive(&batched, &schedule);
            prop_assert_eq!(&got_serial, &got_batched,
                "admission paths diverged on {:?}", &schedule);

            let ms = serial.metrics();
            let mb = batched.metrics();
            prop_assert_eq!(ms.commits, mb.commits);
            prop_assert_eq!(ms.aborts, mb.aborts);
            prop_assert_eq!(ms.access_aborts, mb.access_aborts);
            prop_assert_eq!(ms.validation_aborts, mb.validation_aborts);
            prop_assert_eq!(serial.snapshot(), batched.snapshot());

            // The batched path really ran through the staging queue …
            let stats = batched.admission_stats();
            prop_assert!(stats.batches >= schedule.len() as u64);
            // … and the serial database never touched it.
            prop_assert_eq!(serial.admission_stats().batches, 0);
        }
    }
}

mod durability_tests {
    use mdts_model::{ItemId, TxId};
    use mdts_storage::{recover, CrashPoint, Store};
    use mdts_trace::{audit, TraceBuffer, TraceSink};

    use crate::cc::ShardedMtCc;
    use crate::db::{Database, TxError};
    use crate::durability::{DurabilityConfig, CHECKPOINT_TX};

    /// A scratch directory unique to this test, wiped at entry.
    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mdts-eng-dur-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn durable_db(dir: &std::path::Path, trace: TraceSink) -> Database<i64> {
        let store = Store::with_items(8, 100i64);
        let config = DurabilityConfig::new(dir.join("wal.log")).journal(dir.join("journal.jsonl"));
        let (db, _) = Database::with_store_concurrent_durable(
            Box::new(ShardedMtCc::new(3)),
            store,
            trace,
            &config,
        )
        .expect("durable open");
        db
    }

    #[test]
    fn acknowledged_commits_survive_a_restart() {
        let dir = scratch("restart");
        {
            let db = durable_db(&dir, TraceSink::disabled());
            for i in 0..8u32 {
                db.run(16, |tx| {
                    let src = ItemId(i % 8);
                    let v = tx.read(src)?.unwrap_or(0);
                    tx.write(src, v + 1)?;
                    Ok(())
                })
                .expect("commit acknowledged");
            }
            assert!(db.sync(), "all acknowledged epochs must be durable");
            assert!(db.has_durability());
            let m = db.metrics();
            assert_eq!(m.wal_commits, 8 + 1, "8 transactions plus the checkpoint");
            assert!(m.wal_fsyncs >= 1);
            assert_eq!(m.wal_unacked, 0);
        }
        // "Restart": recover the log directly and check the state.
        let recovered = recover::<i64>(&dir.join("wal.log")).unwrap();
        assert!(recovered.committed.contains(&CHECKPOINT_TX));
        assert_eq!(recovered.committed.len(), 9);
        let total: i64 = recovered.store.iter().map(|(_, v)| *v).sum();
        assert_eq!(total, 8 * 100 + 8, "each commit incremented one account");
        assert_eq!(recovered.report.dropped_commits, 0);

        // Re-open durable on the same path: the recovered state seeds the
        // store and the checkpoint epoch re-persists it.
        let config = DurabilityConfig::new(dir.join("wal.log"));
        let (db2, rec2) = Database::<i64>::with_store_concurrent_durable(
            Box::new(ShardedMtCc::new(3)),
            Store::new(),
            TraceSink::disabled(),
            &config,
        )
        .unwrap();
        assert_eq!(rec2.committed.len(), 9);
        let total2: i64 = db2.snapshot().values().sum();
        assert_eq!(total2, 8 * 100 + 8);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_crash_reports_durability_unknown_and_never_loses_acked() {
        let dir = scratch("crash");
        let mut acked: Vec<u32> = Vec::new();
        {
            let db = durable_db(&dir, TraceSink::disabled());
            for i in 0..4u32 {
                let id = std::cell::Cell::new(0u32);
                db.run(16, |tx| {
                    id.set(tx.id().0);
                    let v = tx.read(ItemId(i))?.unwrap_or(0);
                    tx.write(ItemId(i), v + 1)?;
                    Ok(())
                })
                .expect("pre-crash commit acknowledged");
                acked.push(id.get());
            }
            assert!(db.sync());
            db.set_crash_point(CrashPoint::MidEpoch);
            // The next commits hit the torn epoch: DurabilityUnknown, and
            // the engine must not retry them.
            let mut unknown = 0;
            for i in 0..4u32 {
                match db.run(16, |tx| {
                    let v = tx.read(ItemId(i))?.unwrap_or(0);
                    tx.write(ItemId(i), v + 10)?;
                    Ok(())
                }) {
                    Err(TxError::DurabilityUnknown) => unknown += 1,
                    Ok(()) => {}
                    Err(e) => panic!("unexpected {e}"),
                }
            }
            assert!(unknown >= 1, "the crash must surface at least once");
            assert!(db.wal_crashed());
            assert!(!db.sync(), "sync must report the halt");
            assert!(db.metrics().wal_unacked >= 1);
        }
        let recovered = recover::<i64>(&dir.join("wal.log")).unwrap();
        for id in acked {
            assert!(
                recovered.committed.contains(&TxId(id)),
                "acknowledged T{id} lost by the crash"
            );
        }
        assert!(recovered.report.unsealed_tail, "the torn epoch is discarded as the tail");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn post_fsync_pre_ack_crash_is_durable_but_unacknowledged() {
        let dir = scratch("postfsync");
        let tx_id = std::cell::Cell::new(0u32);
        {
            let db = durable_db(&dir, TraceSink::disabled());
            db.set_crash_point(CrashPoint::PostFsyncPreAck);
            let r = db.run(16, |tx| {
                tx_id.set(tx.id().0);
                let v = tx.read(ItemId(0))?.unwrap_or(0);
                tx.write(ItemId(0), v + 7)?;
                Ok(())
            });
            assert_eq!(r, Err(TxError::DurabilityUnknown), "fsynced but never acknowledged");
        }
        // One-directional guarantee: the unacknowledged epoch WAS fsynced,
        // so recovery replays it (acked ⊆ recovered, never the reverse).
        let recovered = recover::<i64>(&dir.join("wal.log")).unwrap();
        assert!(recovered.committed.contains(&TxId(tx_id.get())));
        assert_eq!(recovered.store.get(ItemId(0)), Some(&107));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_rotation_truncates_the_log_and_preserves_state() {
        let dir = scratch("checkpoint");
        let snapshot;
        {
            let store = Store::with_items(8, 100i64);
            let config = DurabilityConfig::new(dir.join("wal.log")).checkpoint_every(4);
            let (db, _) = Database::with_store_concurrent_durable(
                Box::new(ShardedMtCc::new(3)),
                store,
                TraceSink::disabled(),
                &config,
            )
            .unwrap();
            for i in 0..40u32 {
                db.run(16, |tx| {
                    let item = ItemId(i % 8);
                    let v = tx.read(item)?.unwrap_or(0);
                    tx.write(item, v + 1)?;
                    Ok(())
                })
                .expect("commit acknowledged");
                // One sealed epoch per commit, so the 4-epoch cadence
                // fires repeatedly.
                assert!(db.sync());
            }
            let g = db.gauges();
            assert!(g.wal_truncations >= 1, "40 sealed epochs at cadence 4 must rotate");
            assert_eq!(g.wal_checkpoints, g.wal_truncations);
            snapshot = db.snapshot();
        }
        // Truncation subsumes pre-checkpoint transactions into
        // CHECKPOINT_TX, so the post-restart contract is store equality,
        // not committed-set membership.
        let recovered = recover::<i64>(&dir.join("wal.log")).unwrap();
        assert!(recovered.committed.contains(&CHECKPOINT_TX));
        assert!(
            recovered.report.sealed_epochs < 40,
            "the log retained all {} epochs — never truncated",
            recovered.report.sealed_epochs
        );
        assert_eq!(recovered.store.len(), snapshot.len());
        for (item, value) in &snapshot {
            assert_eq!(recovered.store.get(*item), Some(value));
        }
        // Reopen over the truncated log: state carries forward.
        let config = DurabilityConfig::new(dir.join("wal.log"));
        let (db2, _) = Database::<i64>::with_store_concurrent_durable(
            Box::new(ShardedMtCc::new(3)),
            Store::new(),
            TraceSink::disabled(),
            &config,
        )
        .unwrap();
        let total: i64 = db2.snapshot().values().sum();
        assert_eq!(total, 8 * 100 + 40);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoints_race_concurrent_commits_without_losing_state() {
        let dir = scratch("checkpoint-race");
        let snapshot;
        {
            let store = Store::with_items(16, 0i64);
            let config = DurabilityConfig::new(dir.join("wal.log")).checkpoint_every(2);
            let (db, _) = Database::with_store_concurrent_durable(
                Box::new(ShardedMtCc::new(3)),
                store,
                TraceSink::disabled(),
                &config,
            )
            .unwrap();
            std::thread::scope(|s| {
                for t in 0..4u32 {
                    let db = &db;
                    s.spawn(move || {
                        for i in 0..50u32 {
                            db.run(64, |tx| {
                                let item = ItemId((t * 50 + i) % 16);
                                let v = tx.read(item)?.unwrap_or(0);
                                tx.write(item, v + 1)?;
                                Ok(())
                            })
                            .expect("commit acknowledged");
                        }
                    });
                }
            });
            assert!(db.sync());
            snapshot = db.snapshot();
            let total: i64 = snapshot.values().sum();
            assert_eq!(total, 200, "every acknowledged increment is in memory");
        }
        // Rotations raced the committers; the recovered store must still
        // equal the final in-memory state exactly.
        let recovered = recover::<i64>(&dir.join("wal.log")).unwrap();
        assert_eq!(recovered.store.len(), snapshot.len());
        for (item, value) in &snapshot {
            assert_eq!(recovered.store.get(*item), Some(value));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journaled_trace_certifies_the_recovered_committed_set() {
        let dir = scratch("certify");
        {
            let buffer = TraceBuffer::unbounded(4);
            let mut cc = ShardedMtCc::new(3);
            cc.attach_trace(TraceSink::to(&buffer));
            let store = Store::with_items(8, 100i64);
            let config =
                DurabilityConfig::new(dir.join("wal.log")).journal(dir.join("journal.jsonl"));
            let (db, _) = Database::with_store_concurrent_durable(
                Box::new(cc),
                store,
                TraceSink::to(&buffer),
                &config,
            )
            .unwrap();
            for i in 0..6u32 {
                db.run(16, |tx| {
                    let a = ItemId(i % 8);
                    let b = ItemId((i + 1) % 8);
                    let x = tx.read(a)?.unwrap_or(0);
                    let y = tx.read(b)?.unwrap_or(0);
                    tx.write(a, x - 1)?;
                    tx.write(b, y + 1)?;
                    Ok(())
                })
                .expect("commit acknowledged");
            }
            assert!(db.sync());
        } // drop flushes the final journal slice and joins the daemon
        let recovered = recover::<i64>(&dir.join("wal.log")).unwrap();
        let text = std::fs::read_to_string(dir.join("journal.jsonl")).unwrap();
        let (trace, report) = mdts_trace::from_jsonl(&text).expect("journal parses");
        assert!(!report.torn_tail, "clean shutdown leaves no torn tail");
        let verdict = audit(&trace, 3);
        assert!(verdict.violations.is_empty(), "auditor: {:?}", verdict.violations);
        // Every WAL-recovered transaction (checkpoint aside) has its
        // commit event in the journal: the journal fsync precedes the
        // epoch fsync.
        let journaled: std::collections::BTreeSet<TxId> = trace
            .events()
            .filter_map(|e| match e {
                mdts_trace::TraceEvent::Commit { tx } => Some(*tx),
                _ => None,
            })
            .collect();
        for tx in recovered.committed.iter().filter(|t| **t != CHECKPOINT_TX) {
            assert!(journaled.contains(tx), "recovered {tx:?} missing from the journaled trace");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
