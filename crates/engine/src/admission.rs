//! ISSUE 10: the epoch-batched admission pipeline.
//!
//! PR 9's group-commit daemon batches commits on the way *out*; this
//! module batches transactions on the way *in*. A bounded staging queue
//! collects admission requests, and one **leader** thread drains it in
//! batches: the whole batch's transaction ids are taken from the global
//! counter in a single fenced `fetch_add(n)` block, every incarnation is
//! registered with the protocol, and the batch's declared first-access
//! items are prewarmed through [`ConcurrentCc::warm_probes`] — grouped by
//! scheduler shard, so each `RT`/`WT` flat-table region and order-cache
//! line is touched once per batch instead of once per transaction, and
//! driven through the fused one-vs-many compare lane of PR 8.
//!
//! The design is flat combining:
//!
//! * **Fast path** — the queue is empty and no leader is active: the
//!   caller becomes leader, admits itself as a batch of one (exactly the
//!   serial admission sequence), drains any stragglers that arrived
//!   meanwhile, and leaves. Uncontended admission costs two short mutex
//!   sections on top of the serial path; there is no new bottleneck.
//! * **Slow path** — a leader is active: the caller stages a request
//!   slot and parks. The leader batch-admits it, publishes the assigned
//!   id into the parker's per-thread cell (`Release`), and unparks it —
//!   publish-before-unpark, the same protocol as the WAL's
//!   `wait_durable`. Restart re-admission flows through the same queue,
//!   which is what lets a Zipf hot spot stop re-probing cold: a
//!   restarted incarnation has its first vector element defined by the
//!   starvation hint (III-D-4), so its prewarmed Definition-6 compares
//!   are *decided* and land in the order cache before the access path
//!   ever runs.
//!
//! The prewarm is decision-neutral by construction — it only memoizes
//! compares that are already decided and writes no holder or vector
//! state — so batched admission is decision-for-decision identical to
//! serial admission (the `admission_oracle` proptest in
//! `engine_tests.rs` pins this against random schedules).
//!
//! Memory ordering (see DESIGN.md §9 for the full table): the id handoff
//! is `AdmitCell::id` `store(Release)` by the leader, `load(Acquire)` by
//! the parked follower — the follower's subsequent protocol calls must
//! happen-after the leader's `begin` for its id. The leader/queue state
//! itself is mutex-protected; the statistics counters are `Relaxed`
//! (monotone, read only by the metrics sampler).

use std::cell::OnceCell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::Thread;

use mdts_model::{ItemId, TxId};
use mdts_trace::{TraceEvent, TraceSink};

use crate::cc::ConcurrentCc;

/// Maximum declared first-access items carried inline in a staging slot.
/// Larger footprints are truncated — the prewarm is a cache warm-up, not
/// a correctness requirement, so dropping the tail only costs a probe on
/// the access path.
pub const ADMIT_FOOTPRINT: usize = 4;

/// Hard bound of the staging queue. An arrival finding the queue at
/// capacity spins (yielding) until the leader drains; in practice the
/// depth never exceeds the number of client threads, each of which has
/// at most one admission in flight.
pub const ADMIT_QUEUE_CAP: usize = 1024;

/// Admission-pipeline configuration (see the module docs and README's
/// knob table).
#[derive(Clone, Copy, Debug)]
pub struct AdmissionConfig {
    /// Maximum transactions admitted in one fenced id block. Larger
    /// drains are split into chunks of this size.
    pub batch_max: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig { batch_max: 32 }
    }
}

impl AdmissionConfig {
    /// Reads the knobs from the environment: `MDTS_ADMIT_MODE`
    /// (`batched` — the default — or `off`) and `MDTS_ADMIT_BATCH`
    /// (batch cap, default 32). Returns `None` when admission batching
    /// is disabled, which restores the serial pre-ISSUE-10 admission
    /// path exactly.
    pub fn from_env() -> Option<Self> {
        match std::env::var("MDTS_ADMIT_MODE").as_deref() {
            Ok("off") | Ok("0") => return None,
            _ => {}
        }
        let mut cfg = AdmissionConfig::default();
        if let Ok(v) = std::env::var("MDTS_ADMIT_BATCH") {
            if let Ok(n) = v.parse::<usize>() {
                cfg.batch_max = n.clamp(1, ADMIT_QUEUE_CAP);
            }
        }
        Some(cfg)
    }
}

/// Cumulative admission-pipeline counters plus the point-in-time queue
/// depth, surfaced through `Database::gauges` into `mdts-metrics/v1`
/// and the telemetry windows.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Fenced id blocks issued (each covers one admitted batch,
    /// including every batch-of-one fast path).
    pub batches: u64,
    /// Transactions admitted through those blocks.
    pub batched_txns: u64,
    /// Admissions that parked in the staging queue (slow path).
    pub parked: u64,
    /// High-water batch size.
    pub max_batch: u64,
    /// `(item, tx)` pairs prewarmed through the shard-grouped probe.
    pub prewarm_pairs: u64,
    /// Staged requests at sample time (occupancy gauge).
    pub queue_depth: u64,
}

/// Per-thread id handoff cell: the leader publishes the assigned id with
/// `Release` and unparks; the staged thread spins on `park` until it
/// observes a non-zero id with `Acquire`. One cell per thread, allocated
/// on the thread's first parked admission and reused forever after —
/// the steady state stays allocation-free.
struct AdmitCell {
    /// 0 = not yet assigned, else the assigned transaction id.
    id: AtomicU32,
    thread: Thread,
}

std::thread_local! {
    static ADMIT_CELL: OnceCell<Arc<AdmitCell>> = const { OnceCell::new() };
}

fn my_cell() -> Arc<AdmitCell> {
    ADMIT_CELL.with(|c| {
        Arc::clone(c.get_or_init(|| {
            Arc::new(AdmitCell { id: AtomicU32::new(0), thread: std::thread::current() })
        }))
    })
}

/// One staged admission request.
struct Slot {
    cell: Arc<AdmitCell>,
    /// Predecessor incarnation for a restart re-admission.
    prev: Option<TxId>,
    items: [ItemId; ADMIT_FOOTPRINT],
    n_items: u8,
}

/// Queue state under the staging mutex.
struct Pending {
    slots: Vec<Slot>,
    /// A leader is currently admitting batches outside this mutex.
    /// Invariant: `!leader` implies `slots.is_empty()` — slots are only
    /// pushed while a leader is active, and the leader clears the flag
    /// only after observing the queue empty (under this mutex), so every
    /// staged request is drained by the leader that was active when it
    /// was pushed.
    leader: bool,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The staging queue (see the module docs). One per [`crate::Database`].
pub struct Admission {
    batch_max: usize,
    pending: Mutex<Pending>,
    /// Drain double-buffer. Only the active leader touches it (the
    /// `leader` flag serializes leaders), so the lock is uncontended; it
    /// exists to let the leader release the staging mutex — and keep
    /// accepting arrivals — while it admits the drained batch. Both
    /// vectors retain their capacity across batches.
    drain: Mutex<Vec<Slot>>,
    batches: AtomicU64,
    batched_txns: AtomicU64,
    parked: AtomicU64,
    max_batch: AtomicU64,
    prewarm_pairs: AtomicU64,
}

impl Admission {
    /// Fresh queue with warmed buffers.
    pub fn new(config: AdmissionConfig) -> Self {
        let cap = config.batch_max.min(64);
        Admission {
            batch_max: config.batch_max.max(1),
            pending: Mutex::new(Pending { slots: Vec::with_capacity(cap), leader: false }),
            drain: Mutex::new(Vec::with_capacity(cap)),
            batches: AtomicU64::new(0),
            batched_txns: AtomicU64::new(0),
            parked: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
            prewarm_pairs: AtomicU64::new(0),
        }
    }

    /// Current counters plus the live queue depth.
    pub fn stats(&self) -> AdmissionStats {
        AdmissionStats {
            batches: self.batches.load(Ordering::Relaxed),
            batched_txns: self.batched_txns.load(Ordering::Relaxed),
            parked: self.parked.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
            prewarm_pairs: self.prewarm_pairs.load(Ordering::Relaxed),
            queue_depth: lock(&self.pending).slots.len() as u64,
        }
    }

    /// Admits one transaction (registering it with `cc` under a fresh id
    /// from `next_tx`), possibly as part of a batch. Returns the id and
    /// whether this admission parked in the staging queue — the restart
    /// loop uses the flag to skip the jittered backoff (the queue wait
    /// already staggered the thread) and to reset its escalation counter.
    ///
    /// `pairs` is a caller-owned scratch buffer for the prewarm probe
    /// pairs (recycled across restarts, so the steady state allocates
    /// nothing). Public so the allocation gate can drive the warmed fast
    /// path directly; engine code goes through
    /// [`crate::Database::run_with_footprint`].
    pub fn admit(
        &self,
        cc: &dyn ConcurrentCc,
        next_tx: &AtomicU32,
        trace: &TraceSink,
        prev: Option<TxId>,
        footprint: &[ItemId],
        pairs: &mut Vec<(ItemId, TxId)>,
    ) -> (TxId, bool) {
        loop {
            let mut p = lock(&self.pending);
            if !p.leader {
                debug_assert!(p.slots.is_empty(), "stale slots without an active leader");
                p.leader = true;
                drop(p);
                let id = self.admit_leader(cc, next_tx, trace, prev, footprint, pairs);
                return (id, false);
            }
            if p.slots.len() >= ADMIT_QUEUE_CAP {
                drop(p);
                std::thread::yield_now();
                continue;
            }
            // Slow path: stage a slot and park until the leader publishes
            // the assigned id.
            let cell = my_cell();
            debug_assert_eq!(cell.id.load(Ordering::Relaxed), 0, "one admission per thread");
            let mut items = [ItemId(0); ADMIT_FOOTPRINT];
            let n = footprint.len().min(ADMIT_FOOTPRINT);
            items[..n].copy_from_slice(&footprint[..n]);
            p.slots.push(Slot { cell: Arc::clone(&cell), prev, items, n_items: n as u8 });
            drop(p);
            self.parked.fetch_add(1, Ordering::Relaxed);
            loop {
                let got = cell.id.load(Ordering::Acquire);
                if got != 0 {
                    cell.id.store(0, Ordering::Relaxed);
                    return (TxId(got), true);
                }
                std::thread::park();
            }
        }
    }

    /// Leader service: admit the caller itself (a batch of one, exactly
    /// the serial admission sequence), then drain staged arrivals in
    /// fenced batches until the queue is observed empty.
    fn admit_leader(
        &self,
        cc: &dyn ConcurrentCc,
        next_tx: &AtomicU32,
        trace: &TraceSink,
        prev: Option<TxId>,
        footprint: &[ItemId],
        pairs: &mut Vec<(ItemId, TxId)>,
    ) -> TxId {
        let id = TxId(next_tx.fetch_add(1, Ordering::Relaxed) + 1);
        trace.emit(|| TraceEvent::Begin { tx: id });
        match prev {
            Some(p) => cc.begin_restarted(id, p),
            None => cc.begin(id),
        }
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_txns.fetch_add(1, Ordering::Relaxed);
        self.max_batch.fetch_max(1, Ordering::Relaxed);
        // Prewarm the caller's own footprint only on a restart: the
        // hint-defined first element (III-D-4) is what makes the probed
        // compares decidable, so a fresh batch-of-one would probe for
        // nothing the access path does not already do.
        if prev.is_some() && !footprint.is_empty() {
            pairs.clear();
            pairs.extend(footprint.iter().map(|&item| (item, id)));
            self.prewarm_pairs.fetch_add(pairs.len() as u64, Ordering::Relaxed);
            cc.warm_probes(pairs);
        }
        // Drain stragglers until the queue is empty; only then may the
        // leader flag clear (see the `Pending::leader` invariant).
        loop {
            let mut drained = lock(&self.drain);
            {
                let mut p = lock(&self.pending);
                if p.slots.is_empty() {
                    p.leader = false;
                    return id;
                }
                std::mem::swap(&mut p.slots, &mut *drained);
            }
            for chunk in drained.chunks(self.batch_max) {
                self.admit_batch(cc, next_tx, trace, chunk, pairs);
            }
            drained.clear();
        }
    }

    /// Admits one staged batch: a single fenced `fetch_add(n)` id block,
    /// per-incarnation protocol registration, one shard-grouped prewarm
    /// over the batch's declared footprints, then publish + unpark.
    fn admit_batch(
        &self,
        cc: &dyn ConcurrentCc,
        next_tx: &AtomicU32,
        trace: &TraceSink,
        batch: &[Slot],
        pairs: &mut Vec<(ItemId, TxId)>,
    ) {
        let n = batch.len();
        let base = next_tx.fetch_add(n as u32, Ordering::Relaxed) + 1;
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_txns.fetch_add(n as u64, Ordering::Relaxed);
        self.max_batch.fetch_max(n as u64, Ordering::Relaxed);
        pairs.clear();
        for (i, slot) in batch.iter().enumerate() {
            let id = TxId(base + i as u32);
            trace.emit(|| TraceEvent::Begin { tx: id });
            match slot.prev {
                Some(p) => cc.begin_restarted(id, p),
                None => cc.begin(id),
            }
            for &item in &slot.items[..slot.n_items as usize] {
                pairs.push((item, id));
            }
        }
        if !pairs.is_empty() {
            self.prewarm_pairs.fetch_add(pairs.len() as u64, Ordering::Relaxed);
            cc.warm_probes(pairs);
        }
        // Publish each id before unparking its owner; a parked thread
        // that wakes spuriously just re-parks until its cell is set.
        for (i, slot) in batch.iter().enumerate() {
            slot.cell.id.store(base + i as u32, Ordering::Release);
            slot.cell.thread.unpark();
        }
    }
}
