//! Group-commit durability: a write-ahead redo log behind the commit
//! path (ISSUE 9).
//!
//! # Design
//!
//! The engine commits **in memory first**: a committing transaction
//! frames its write set into the open *epoch buffer* while it still
//! holds its write-set store shards (so log order agrees with apply
//! order item by item), finishes its in-memory commit, and only then
//! blocks on the epoch's durability notification. A single daemon
//! thread seals and fsyncs epochs:
//!
//! * **Immediate flush under load** — the daemon sleeps on a condvar and
//!   is notified the moment an epoch opens, so acknowledgement latency
//!   is one fsync, not one interval; the configured interval is only the
//!   idle heartbeat bound. While an fsync is in flight, later commits
//!   pile into the next epoch buffer — that batch *is* the group commit.
//! * **Crash safety is one-directional** — a transaction is acknowledged
//!   (its `run` call returns `Ok`) only after its epoch's seal is
//!   fsynced. Recovery replays sealed epochs only, so everything
//!   acknowledged is recovered; recovering *more* than was acknowledged
//!   (a fsynced epoch whose waiters were never woken) is safe.
//! * **Trace journal first** — when a journal path is configured, the
//!   daemon writes and fsyncs the trace slice below the epoch's
//!   watermark *before* the epoch's WAL fsync. Every WAL-durable
//!   transaction's commit event is therefore journaled (commits are
//!   emitted to the trace before they are framed), so an auditor can
//!   re-check the recovered store against a decision trace that covers
//!   it. Journaling needs an unbounded trace buffer — a ring that
//!   drops records voids the completeness argument.
//! * **Crash injection** — [`CrashPoint`]s tear the log mid-record,
//!   mid-epoch, or after the fsync but before the acknowledgement; the
//!   daemon halts and every in-flight and later waiter gets
//!   [`crate::TxError::DurabilityUnknown`] instead of hanging.
//! * **Checkpoint + truncation** (ISSUE 10) — with
//!   [`DurabilityConfig::checkpoint_every`] set, every N sealed epochs
//!   the daemon snapshots the committed store into a fresh log — one
//!   sealed epoch under [`CHECKPOINT_TX`] — and atomically renames it
//!   over the live file, bounding both the log size and the replay work
//!   a restart has to do. The rename is the commit point: a crash before
//!   it recovers the old full log, after it the checkpointed one.
//!
//! Lock order: store shards (ascending) → the epoch-buffer mutex. The
//! daemon takes the epoch-buffer mutex alone and never touches engine
//! state — except during a checkpoint, where it snapshots the store
//! shards *without* holding the epoch-buffer mutex (the same
//! shards-before-buffer order committers use, so no cycle).

use std::fs::File;
use std::io::{self, Write as _};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::{JoinHandle, Thread};
use std::time::Duration;

use mdts_model::{ItemId, TxId};
use mdts_storage::wal::{self, CrashPoint, WalValue, WalWriter};
use mdts_trace::{export, TraceBuffer};

/// The pseudo-transaction id under which a durable database checkpoints
/// its initial (or recovered) store contents into the fresh log's first
/// epoch. Recovery reports it in the committed set like any other
/// transaction; real ids start at 1, so it never collides.
pub const CHECKPOINT_TX: TxId = TxId(0);

/// Where and how a durable database logs (see
/// [`crate::Database::with_store_concurrent_durable`]).
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// The redo-log file. Recovered on open, then truncated and rebuilt
    /// from a checkpoint of the recovered state.
    pub wal_path: PathBuf,
    /// Optional trace-journal file (JSONL), fsynced per epoch *before*
    /// the epoch itself; requires a trace sink on an unbounded buffer.
    pub journal_path: Option<PathBuf>,
    /// Idle heartbeat bound for the group-commit daemon. Flushes are
    /// immediate whenever commits are pending; this only bounds how long
    /// the daemon sleeps when the database is idle.
    pub interval: Duration,
    /// Crash-injection site for the durability tests (defaults to none).
    pub crash_point: CrashPoint,
    /// Checkpoint-and-truncate the log every this many sealed epochs
    /// (0 = never, the default). Each checkpoint rewrites the log as a
    /// single sealed epoch holding the committed store under
    /// [`CHECKPOINT_TX`], so log length and restart replay time stay
    /// proportional to the checkpoint interval, not the database's
    /// lifetime.
    pub checkpoint_every: u64,
}

impl DurabilityConfig {
    /// Config with a WAL path, no journal, a 1 ms heartbeat, and no
    /// crash injection.
    pub fn new(wal_path: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            wal_path: wal_path.into(),
            journal_path: None,
            interval: Duration::from_millis(1),
            crash_point: CrashPoint::None,
            checkpoint_every: 0,
        }
    }

    /// Adds a trace-journal file.
    pub fn journal(mut self, path: impl Into<PathBuf>) -> Self {
        self.journal_path = Some(path.into());
        self
    }

    /// Checkpoints and truncates the log every `epochs` sealed epochs
    /// (0 disables).
    pub fn checkpoint_every(mut self, epochs: u64) -> Self {
        self.checkpoint_every = epochs;
        self
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The open epoch's accumulating state, under one mutex.
struct EpochBuf {
    /// Number of the epoch currently accepting commits.
    epoch: u64,
    /// Encoded frames: an `EpochBegin` once the first commit lands, then
    /// one `Commit` record per enqueued transaction.
    frames: Vec<u8>,
    /// Commit records framed into the open epoch.
    commits: u64,
    /// Next log sequence number (monotone across epochs and restarts).
    next_lsn: u64,
    /// Whether the open epoch has begun (any commit framed yet).
    begun: bool,
}

/// State shared between the commit path and the daemon (value-type
/// agnostic: the commit path encodes, the daemon only moves bytes).
struct Core {
    state: Mutex<EpochBuf>,
    /// Kicks the daemon the moment an epoch opens (and on shutdown).
    tick: Condvar,
    interval: Duration,
    /// Highest fsynced epoch (0 = none yet; epochs start at 1).
    durable_epoch: AtomicU64,
    /// Set when an append failed or a crash point fired: the log is
    /// halted and no further acknowledgement will ever arrive.
    crashed: AtomicBool,
    shutdown: AtomicBool,
    /// Committers parked for an epoch's fsync, unparked directly by the
    /// daemon. A condvar broadcast here would wake *every* waiter per
    /// epoch and convoy them through the condvar's mutex — on a loaded
    /// box that herd is a measurable slice of the epoch cycle — whereas
    /// the epoch-bucketed list wakes exactly the satisfied waiters, each
    /// with one `unpark`, and next-epoch waiters sleep through.
    waiters: Mutex<Vec<(u64, Thread)>>,
    /// Crash-injection site, applied by the daemon before each append.
    crash: Mutex<CrashPoint>,
    wal_commits: AtomicU64,
    wal_fsyncs: AtomicU64,
    wal_bytes: AtomicU64,
    /// The live log file, needed by the daemon's checkpoint rotation.
    wal_path: PathBuf,
    /// Checkpoint-and-truncate cadence in sealed epochs (0 = never).
    checkpoint_every: u64,
    /// Snapshot encoder, installed by the engine after construction
    /// (it captures a `Weak` back-reference to the engine's store, which
    /// does not exist yet when the daemon starts). Only the daemon takes
    /// this lock after installation.
    checkpoint: Mutex<Option<CheckpointFn>>,
    wal_checkpoints: AtomicU64,
    wal_truncations: AtomicU64,
}

type EncodeFn<V> = fn(&mut Vec<u8>, u64, TxId, &[(ItemId, V)], &[ItemId]) -> usize;

/// Encodes one [`CHECKPOINT_TX`] commit record carrying the committed
/// store's snapshot at `lsn` into the buffer; returns `false` when the
/// engine is gone (rotation is then skipped). Installed by the engine
/// via [`Durability::install_checkpoint`].
pub(crate) type CheckpointFn = Box<dyn FnMut(&mut Vec<u8>, u64) -> bool + Send>;

/// The engine-side durability handle: owns the daemon and the epoch
/// buffer. Dropping it flushes the open epoch and joins the daemon.
pub(crate) struct Durability<V> {
    core: Arc<Core>,
    /// Monomorphized commit encoder, captured at construction so the
    /// generic commit path needs no `WalValue` bound of its own.
    encode: EncodeFn<V>,
    handle: Option<JoinHandle<()>>,
}

impl<V: WalValue> Durability<V> {
    /// Creates the log (truncating any previous file — recover first),
    /// writes `checkpoint` as a synchronously fsynced first epoch under
    /// [`CHECKPOINT_TX`], and starts the group-commit daemon.
    pub(crate) fn start(
        config: &DurabilityConfig,
        checkpoint: &[(ItemId, V)],
        first_lsn: u64,
        journal_buffer: Option<Arc<TraceBuffer>>,
    ) -> io::Result<Self> {
        let mut writer = WalWriter::create(&config.wal_path)?;
        let mut next_lsn = first_lsn;
        let mut epoch = 1u64;
        let core_counters = (AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0));
        if !checkpoint.is_empty() {
            let mut frames = Vec::new();
            wal::encode_epoch_begin(&mut frames, epoch);
            wal::encode_commit(&mut frames, next_lsn, CHECKPOINT_TX, checkpoint, &[]);
            let seal = wal::encode_epoch_seal(&mut frames, epoch, 1);
            if !writer.append_epoch(&frames, seal)? {
                return Err(io::Error::other("crash injected during the checkpoint epoch"));
            }
            core_counters.0.fetch_add(1, Ordering::Relaxed);
            core_counters.1.fetch_add(1, Ordering::Relaxed);
            core_counters.2.fetch_add(frames.len() as u64, Ordering::Relaxed);
            next_lsn += 1;
            epoch += 1;
        }
        let journal = match (&config.journal_path, journal_buffer) {
            (Some(path), Some(buffer)) => Some((buffer, File::create(path)?)),
            _ => None,
        };
        let core = Arc::new(Core {
            state: Mutex::new(EpochBuf {
                epoch,
                frames: Vec::new(),
                commits: 0,
                next_lsn,
                begun: false,
            }),
            tick: Condvar::new(),
            interval: config.interval.max(Duration::from_micros(50)),
            durable_epoch: AtomicU64::new(epoch - 1),
            crashed: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            waiters: Mutex::new(Vec::new()),
            crash: Mutex::new(config.crash_point),
            wal_commits: core_counters.0,
            wal_fsyncs: core_counters.1,
            wal_bytes: core_counters.2,
            wal_path: config.wal_path.clone(),
            checkpoint_every: config.checkpoint_every,
            checkpoint: Mutex::new(None),
            wal_checkpoints: AtomicU64::new(0),
            wal_truncations: AtomicU64::new(0),
        });
        let daemon_core = Arc::clone(&core);
        let handle = std::thread::Builder::new()
            .name("mdts-wal".into())
            .spawn(move || daemon(daemon_core, writer, journal))?;
        Ok(Durability { core, encode: wal::encode_commit::<V>, handle: Some(handle) })
    }
}

impl<V> Durability<V> {
    /// Frames `tx`'s commit record (minus Thomas-skipped items) into the
    /// open epoch, assigns its LSN, and kicks the daemon. Returns the
    /// epoch to wait on. Called with the write-set store shards held, so
    /// log order equals apply order on every item; the encode itself
    /// writes into the long-lived epoch buffer (no steady-state
    /// allocation).
    pub(crate) fn enqueue(&self, tx: TxId, writes: &[(ItemId, V)], skip: &[ItemId]) -> u64 {
        let mut st = lock(&self.core.state);
        let opened = !st.begun;
        if opened {
            let epoch = st.epoch;
            wal::encode_epoch_begin(&mut st.frames, epoch);
            st.begun = true;
        }
        let lsn = st.next_lsn;
        st.next_lsn += 1;
        let epoch = st.epoch;
        (self.encode)(&mut st.frames, lsn, tx, writes, skip);
        st.commits += 1;
        drop(st);
        self.core.wal_commits.fetch_add(1, Ordering::Relaxed);
        // The daemon only sleeps on `tick` when no epoch is open (it is
        // mid-fsync otherwise and will swap this epoch out on its next
        // loop), so only the commit that opened the epoch needs to kick
        // it — later commits in the same epoch skip the syscall.
        if opened {
            self.core.tick.notify_one();
        }
        epoch
    }

    /// Parks until `epoch` is fsynced (true) or the log has crashed
    /// (false: the commit is applied in memory but was never
    /// acknowledged — [`crate::TxError::DurabilityUnknown`]).
    pub(crate) fn wait_durable(&self, epoch: u64) -> bool {
        loop {
            if self.core.durable_epoch.load(Ordering::Acquire) >= epoch {
                return true;
            }
            if self.core.crashed.load(Ordering::Acquire) {
                return false;
            }
            // Lost-wakeup argument: the daemon publishes `durable_epoch`
            // (or `crashed`) *before* taking the waiters lock to drain,
            // so a re-check under the lock here either sees the publish
            // (return without parking) or this registration strictly
            // precedes the daemon's drain, which will unpark us. A
            // spurious `park` return just re-runs the loop; the stale
            // list entry costs one extra token, never a lost waiter.
            {
                let mut w = lock(&self.core.waiters);
                if self.core.durable_epoch.load(Ordering::Acquire) >= epoch {
                    return true;
                }
                if self.core.crashed.load(Ordering::Acquire) {
                    return false;
                }
                w.push((epoch, std::thread::current()));
            }
            std::thread::park();
        }
    }

    /// Flushes the open epoch (if any) and waits for it; returns whether
    /// everything enqueued so far is durable.
    pub(crate) fn sync(&self) -> bool {
        let target = {
            let st = lock(&self.core.state);
            if st.begun {
                st.epoch
            } else {
                st.epoch - 1
            }
        };
        self.core.tick.notify_one();
        self.wait_durable(target)
    }

    /// Highest fsynced epoch (0 before the first).
    pub(crate) fn durable_epoch(&self) -> u64 {
        self.core.durable_epoch.load(Ordering::Acquire)
    }

    /// Whether the log halted on an append failure or injected crash.
    pub(crate) fn crashed(&self) -> bool {
        self.core.crashed.load(Ordering::Acquire)
    }

    /// Bytes framed into the open epoch but not yet handed to the daemon.
    pub(crate) fn pending_bytes(&self) -> u64 {
        lock(&self.core.state).frames.len() as u64
    }

    /// `(commits framed, epochs fsynced, bytes fsynced)` so far.
    pub(crate) fn stats(&self) -> (u64, u64, u64) {
        (
            self.core.wal_commits.load(Ordering::Relaxed),
            self.core.wal_fsyncs.load(Ordering::Relaxed),
            self.core.wal_bytes.load(Ordering::Relaxed),
        )
    }

    /// Arms a crash-injection site; the daemon applies it before its
    /// next append.
    pub(crate) fn set_crash_point(&self, point: CrashPoint) {
        *lock(&self.core.crash) = point;
    }

    /// Installs the snapshot encoder the daemon's checkpoint rotation
    /// uses. Without one (or with `checkpoint_every == 0`) the log only
    /// ever grows.
    pub(crate) fn install_checkpoint(&self, f: CheckpointFn) {
        *lock(&self.core.checkpoint) = Some(f);
    }

    /// `(checkpoints written, truncations performed)` so far.
    pub(crate) fn checkpoint_stats(&self) -> (u64, u64) {
        (
            self.core.wal_checkpoints.load(Ordering::Relaxed),
            self.core.wal_truncations.load(Ordering::Relaxed),
        )
    }
}

impl<V> Drop for Durability<V> {
    fn drop(&mut self) {
        self.core.shutdown.store(true, Ordering::Release);
        self.core.tick.notify_one();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Journals the trace slice below the buffer's current watermark:
/// everything with `seq < next_seq()` is fully inserted (the sink takes
/// sequence numbers inside the lane lock), so consecutive slices form a
/// gapless prefix of the decision trace.
fn journal_slice(
    mark: &mut u64,
    buffer: &TraceBuffer,
    file: &mut File,
    text: &mut String,
) -> io::Result<()> {
    let hi = buffer.next_seq();
    if hi <= *mark {
        return Ok(());
    }
    text.clear();
    for record in buffer.records_since(*mark) {
        if record.seq >= hi {
            continue;
        }
        text.push_str(&export::record_json(&record).render());
        text.push('\n');
    }
    file.write_all(text.as_bytes())?;
    file.sync_data()?;
    *mark = hi;
    Ok(())
}

/// The group-commit daemon: swap the open epoch out under the mutex,
/// journal the trace slice, seal, append, fsync, publish, notify.
fn daemon(core: Arc<Core>, mut writer: WalWriter, mut journal: Option<(Arc<TraceBuffer>, File)>) {
    let mut spare: Vec<u8> = Vec::new();
    let mut mark = 0u64;
    let mut text = String::new();
    let mut since_checkpoint = 0u64;
    loop {
        let (mut frames, epoch, commits) = {
            let mut st = lock(&core.state);
            loop {
                if st.begun {
                    break;
                }
                if core.shutdown.load(Ordering::Acquire) {
                    drop(st);
                    // Final journal slice: events emitted after the last
                    // epoch (aborts, telemetry) still reach the file.
                    if let Some((buffer, file)) = journal.as_mut() {
                        let _ = journal_slice(&mut mark, buffer, file, &mut text);
                    }
                    return;
                }
                let (g, _) = core
                    .tick
                    .wait_timeout(st, core.interval)
                    .unwrap_or_else(PoisonError::into_inner);
                st = g;
            }
            // Double-buffer: the committers keep filling `spare` (now
            // installed as the open buffer) while this epoch fsyncs.
            let frames = std::mem::replace(&mut st.frames, std::mem::take(&mut spare));
            let epoch = st.epoch;
            let commits = st.commits;
            st.epoch += 1;
            st.commits = 0;
            st.begun = false;
            (frames, epoch, commits)
        };
        // Journal before the WAL fsync: every transaction whose commit
        // becomes durable below has its commit event on disk first.
        let mut halted = false;
        if let Some((buffer, file)) = journal.as_mut() {
            halted = journal_slice(&mut mark, buffer, file, &mut text).is_err();
        }
        writer.set_crash_point(*lock(&core.crash));
        let seal = wal::encode_epoch_seal(&mut frames, epoch, commits);
        let total = frames.len() as u64;
        let acked = !halted && writer.append_epoch(&frames, seal).unwrap_or(false);
        if acked {
            core.wal_fsyncs.fetch_add(1, Ordering::Relaxed);
            core.wal_bytes.fetch_add(total, Ordering::Relaxed);
            // Publish before draining: see the lost-wakeup argument in
            // `wait_durable`. Only waiters at or below the sealed epoch
            // wake; pipelined next-epoch waiters stay parked.
            core.durable_epoch.store(epoch, Ordering::Release);
            let mut w = lock(&core.waiters);
            w.retain(|(e, t)| {
                if *e <= epoch {
                    t.unpark();
                    false
                } else {
                    true
                }
            });
        } else {
            // Injected crash or real I/O failure: the log is halted.
            // Everything already fsynced stays acknowledged; every
            // later waiter learns its durability is unknown.
            core.crashed.store(true, Ordering::Release);
            for (_, t) in lock(&core.waiters).drain(..) {
                t.unpark();
            }
            return;
        }
        frames.clear();
        spare = frames;
        since_checkpoint += 1;
        if core.checkpoint_every > 0
            && since_checkpoint >= core.checkpoint_every
            && rotate(&core, &mut writer, epoch)
        {
            since_checkpoint = 0;
        }
    }
}

/// Checkpoint-and-truncate: writes a fresh log holding one sealed epoch
/// — the committed store under [`CHECKPOINT_TX`] — and atomically
/// renames it over the live file, then swaps the daemon's writer to it.
/// Returns whether the rotation completed (a failure leaves the old log
/// in place and just means rotation is retried after the next epoch).
///
/// The new file's checkpoint epoch reuses `sealed_epoch` — the number
/// just fsynced — so the still-open epoch (`sealed_epoch + 1`) appends
/// to the new file with the monotonicity the recovery scan demands.
///
/// Snapshot consistency: the checkpoint's LSN is consumed under the
/// epoch-buffer mutex *before* the snapshot closure runs. Every commit
/// framed earlier holds all its write-set store shards from enqueue
/// through apply, so the per-shard snapshot observes it in full; any
/// commit framed later lands in an epoch at or past `sealed_epoch + 1`
/// with a higher LSN and replays after the checkpoint regardless of how
/// much of it the snapshot caught.
fn rotate(core: &Core, writer: &mut WalWriter, sealed_epoch: u64) -> bool {
    let mut cp = lock(&core.checkpoint);
    let Some(encode_checkpoint) = cp.as_mut() else {
        return false;
    };
    let lsn = {
        let mut st = lock(&core.state);
        let lsn = st.next_lsn;
        st.next_lsn += 1;
        lsn
    };
    let mut frames = Vec::new();
    wal::encode_epoch_begin(&mut frames, sealed_epoch);
    if !encode_checkpoint(&mut frames, lsn) {
        // The engine is gone (shutdown race): keep the old log.
        return false;
    }
    let seal = wal::encode_epoch_seal(&mut frames, sealed_epoch, 1);
    let tmp = core.wal_path.with_extension("rotate");
    let swapped = (|| -> io::Result<bool> {
        let mut w = WalWriter::create(&tmp)?;
        if !w.append_epoch(&frames, seal)? {
            return Ok(false);
        }
        // The rename is the commit point: before it a crash recovers the
        // old full log, after it the checkpointed one. Then best-effort
        // fsync of the directory so the rename itself is durable.
        std::fs::rename(&tmp, &core.wal_path)?;
        if let Some(dir) = core.wal_path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        *writer = w;
        Ok(true)
    })()
    .unwrap_or(false);
    if swapped {
        core.wal_checkpoints.fetch_add(1, Ordering::Relaxed);
        core.wal_truncations.fetch_add(1, Ordering::Relaxed);
        core.wal_bytes.fetch_add(frames.len() as u64, Ordering::Relaxed);
    } else {
        std::fs::remove_file(&tmp).ok();
    }
    swapped
}
