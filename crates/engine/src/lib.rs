//! The executable transaction engine.
//!
//! Where the other crates treat the protocols as *log recognizers*, this
//! crate runs them: a [`Database`] holds the store and a pluggable
//! [`ConcurrencyControl`]; client threads run closures against
//! transaction handles; aborted transactions are rolled back and retried
//! with fresh ids.
//!
//! Writes are **deferred** throughout, the paper's preferred scheme
//! (VI-C-2): every write goes to a transaction-private workspace, is
//! validated by the protocol at commit and only then applied.
//! Consequently no transaction ever observes uncommitted data — there are
//! no dirty reads, no cascading aborts, and a committed transaction can
//! never be undone.
//!
//! The engine itself has **no global mutex**: values live in a
//! [`mdts_storage::ShardedStore`], write buffers are transaction-local,
//! and the protocol sits behind the [`ConcurrentCc`] interface — natively
//! concurrent for [`ShardedMtCc`], or any sequential
//! [`ConcurrencyControl`] wrapped in a [`SerializedCc`] mutex.
//!
//! Protocols available as [`ConcurrencyControl`] implementations:
//!
//! | adapter | protocol |
//! |---|---|
//! | [`MtCc`] | MT(k), with all [`mdts_core::MtOptions`] refinements |
//! | [`CompositeCc`] | MT(k⁺) with the paper's abort-all-and-restart rule |
//! | [`TwoPlCc`] | strict two-phase locking (blocking, deadlock victims) |
//! | [`BasicToCc`] | single-valued timestamp ordering |
//! | [`MvToCc`] | Reed-style multiversion timestamp ordering |
//! | [`OccCc`] | optimistic with backward validation |
//! | [`IntervalCc`] | Bayer-style dynamic timestamp intervals |
//!
//! …and natively concurrent, as [`ConcurrentCc`]:
//!
//! | adapter | protocol |
//! |---|---|
//! | [`ShardedMtCc`] | MT(k) on [`mdts_core::SharedMtScheduler`] — item-sharded timestamp table, O(1) reclamation |
//!
//! With [`Database::new_multiversion`] the engine additionally serves
//! **read-only snapshot transactions** from MV-MT(k) version chains
//! ([`Database::run_read_only`]): they never abort, restart or block
//! writers.
//!
//! With [`Database::with_store_concurrent_durable`] commits are also
//! framed into a group-commit **write-ahead log** ([`DurabilityConfig`])
//! and acknowledged only once fsynced; a restart recovers the sealed
//! epochs and an auditor can certify the recovered state against the
//! persisted decision-trace journal.

pub mod admission;
pub mod cc;
pub mod db;
pub mod durability;
pub mod metrics;
pub(crate) mod sync;
pub mod wakeseq;
pub mod workload;

pub use admission::{Admission, AdmissionConfig, AdmissionStats, ADMIT_FOOTPRINT};
pub use cc::{
    BasicToCc, CommitDecision, CompositeCc, ConcurrencyControl, ConcurrentCc, IntervalCc, MtCc,
    MvToCc, OccCc, SchedulerGauges, SerializedCc, ShardedMtCc, TwoPlCc, Verdict,
};
pub use db::{Database, SnapshotTx, Tx, TxError};
pub use durability::{DurabilityConfig, CHECKPOINT_TX};
pub use metrics::{
    EngineGauges, LatencySnapshot, MetricsSnapshot, Phase, PhaseSnapshot, PhaseTimers,
    LATENCY_BUCKETS, PHASE_COUNT,
};
pub use workload::{
    bank_database, bank_database_concurrent, bank_database_durable, bank_database_multiversion,
    run_bank_mix, run_bank_mix_concurrent, run_bank_mix_db, run_bank_mix_multiversion,
    run_bank_mix_multiversion_audited, BankConfig, BankReport,
};

#[cfg(test)]
mod engine_tests;
