//! The executable transaction engine.
//!
//! Where the other crates treat the protocols as *log recognizers*, this
//! crate runs them: a [`Database`] holds the store and a pluggable
//! [`ConcurrencyControl`]; client threads run closures against
//! transaction handles; aborted transactions are rolled back and retried
//! with fresh ids.
//!
//! Writes are **deferred** throughout, the paper's preferred scheme
//! (VI-C-2): every write goes to a private workspace
//! ([`mdts_storage::WriteBuffer`]), is validated by the protocol at commit
//! and only then applied. Consequently no transaction ever observes
//! uncommitted data — there are no dirty reads, no cascading aborts, and a
//! committed transaction can never be undone.
//!
//! Protocols available as [`ConcurrencyControl`] implementations:
//!
//! | adapter | protocol |
//! |---|---|
//! | [`MtCc`] | MT(k), with all [`mdts_core::MtOptions`] refinements |
//! | [`CompositeCc`] | MT(k⁺) with the paper's abort-all-and-restart rule |
//! | [`TwoPlCc`] | strict two-phase locking (blocking, deadlock victims) |
//! | [`BasicToCc`] | single-valued timestamp ordering |
//! | [`OccCc`] | optimistic with backward validation |
//! | [`IntervalCc`] | Bayer-style dynamic timestamp intervals |

pub mod cc;
pub mod db;
pub mod metrics;
pub mod workload;

pub use cc::{
    BasicToCc, CommitDecision, CompositeCc, ConcurrencyControl, IntervalCc, MtCc, OccCc,
    TwoPlCc, Verdict,
};
pub use db::{Database, Tx, TxError};
pub use metrics::MetricsSnapshot;
pub use workload::{run_bank_mix, BankConfig, BankReport};

#[cfg(test)]
mod engine_tests;
