//! The database: store + write buffers + a pluggable protocol behind one
//! lock, with a retrying transaction driver.
//!
//! Concurrency model: protocol state and store live in a single
//! `parking_lot::Mutex`; client threads hold it only for the duration of
//! one protocol decision. Blocking protocols (2PL) park on a condvar and
//! are woken whenever locks are released. This is the classical
//! "scheduler as a critical section" structure — the protocols themselves
//! are the object of study, not lock-free engineering.

use std::sync::Arc;

use parking_lot::{Condvar, Mutex, MutexGuard};

use mdts_model::{ItemId, TxId};
use mdts_storage::{Store, WriteBuffer};

use crate::cc::{CommitDecision, ConcurrencyControl, Verdict};
use crate::metrics::{Metrics, MetricsSnapshot};

/// Terminal failure of [`Database::run`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxError {
    /// The transaction aborted more than `max_restarts` times.
    RetriesExhausted,
}

impl std::fmt::Display for TxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxError::RetriesExhausted => write!(f, "transaction retries exhausted"),
        }
    }
}

impl std::error::Error for TxError {}

/// Control-flow marker: the current transaction incarnation has been
/// aborted; propagate with `?` out of the transaction closure.
#[derive(Debug)]
pub struct Aborted;

struct State<V> {
    store: Store<V>,
    buffers: WriteBuffer<V>,
    cc: Box<dyn ConcurrencyControl>,
    next_tx: u32,
    epoch: u64,
}

struct Shared<V> {
    state: Mutex<State<V>>,
    cond: Condvar,
    metrics: Metrics,
    name: &'static str,
}

/// A transactional database over values `V`.
pub struct Database<V> {
    shared: Arc<Shared<V>>,
}

impl<V> Clone for Database<V> {
    fn clone(&self) -> Self {
        Database { shared: Arc::clone(&self.shared) }
    }
}

impl<V: Clone + Send + 'static> Database<V> {
    /// Empty database under the given protocol.
    pub fn new(cc: Box<dyn ConcurrencyControl>) -> Self {
        Database::with_store(cc, Store::new())
    }

    /// Database with a pre-populated store.
    pub fn with_store(cc: Box<dyn ConcurrencyControl>, store: Store<V>) -> Self {
        let name = cc.name();
        Database {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    store,
                    buffers: WriteBuffer::new(),
                    cc,
                    next_tx: 0,
                    epoch: 0,
                }),
                cond: Condvar::new(),
                metrics: Metrics::default(),
                name,
            }),
        }
    }

    /// The protocol's display name.
    pub fn protocol_name(&self) -> &'static str {
        self.shared.name
    }

    /// Current committed contents.
    pub fn snapshot(&self) -> std::collections::BTreeMap<ItemId, V> {
        self.shared.state.lock().store.snapshot()
    }

    /// Current counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Runs `body` as a transaction, retrying on abort up to
    /// `max_restarts` times. The closure reads and writes through the
    /// [`Tx`] handle and must propagate [`Aborted`] with `?`.
    pub fn run<T>(
        &self,
        max_restarts: usize,
        mut body: impl FnMut(&mut Tx<'_, V>) -> Result<T, Aborted>,
    ) -> Result<T, TxError> {
        let mut prev: Option<TxId> = None;
        for attempt in 0..=max_restarts {
            let (id, epoch) = {
                let mut st = self.shared.state.lock();
                st.next_tx += 1;
                let id = TxId(st.next_tx);
                match prev {
                    Some(p) => st.cc.begin_restarted(id, p),
                    None => st.cc.begin(id),
                }
                (id, st.epoch)
            };
            let mut tx = Tx { shared: &self.shared, id, epoch };
            if let Ok(value) = body(&mut tx) {
                if tx.commit() {
                    Metrics::bump(&self.shared.metrics.commits);
                    return Ok(value);
                }
            }
            // The failing call already cleaned up this incarnation.
            prev = Some(id);
            if attempt < max_restarts {
                Metrics::bump(&self.shared.metrics.restarts);
                std::thread::yield_now();
            }
        }
        Err(TxError::RetriesExhausted)
    }
}

/// A live transaction handle.
pub struct Tx<'a, V> {
    shared: &'a Shared<V>,
    id: TxId,
    epoch: u64,
}

impl<V: Clone + Send + 'static> Tx<'_, V> {
    /// This incarnation's transaction id.
    pub fn id(&self) -> TxId {
        self.id
    }

    fn cleanup(&self, st: &mut MutexGuard<'_, State<V>>) {
        st.buffers.discard(self.id);
        let _woken = st.cc.aborted(self.id);
        Metrics::bump(&self.shared.metrics.aborts);
        self.shared.cond.notify_all();
    }

    fn epoch_ok(&self, st: &mut MutexGuard<'_, State<V>>) -> bool {
        if st.epoch == self.epoch {
            return true;
        }
        Metrics::bump(&self.shared.metrics.epoch_aborts);
        self.cleanup(st);
        false
    }

    fn abort_all(&self, st: &mut MutexGuard<'_, State<V>>) {
        st.epoch += 1;
        self.cleanup(st);
    }

    /// Reads an item (own uncommitted writes are visible; nobody else's
    /// are). `Ok(None)` means the item has never been written.
    pub fn read(&mut self, item: ItemId) -> Result<Option<V>, Aborted> {
        let mut st = self.shared.state.lock();
        loop {
            if !self.epoch_ok(&mut st) {
                return Err(Aborted);
            }
            match st.cc.read(self.id, item) {
                Verdict::Granted | Verdict::Ignored => {
                    Metrics::bump(&self.shared.metrics.reads);
                    let value = st
                        .buffers
                        .own_read(self.id, item)
                        .cloned()
                        .or_else(|| st.store.get(item).cloned());
                    return Ok(value);
                }
                Verdict::Blocked => {
                    Metrics::bump(&self.shared.metrics.blocked_waits);
                    self.shared.cond.wait(&mut st);
                }
                Verdict::Abort => {
                    self.cleanup(&mut st);
                    return Err(Aborted);
                }
                Verdict::AbortAll => {
                    self.abort_all(&mut st);
                    return Err(Aborted);
                }
            }
        }
    }

    /// Writes an item into the private workspace (applied at commit).
    pub fn write(&mut self, item: ItemId, value: V) -> Result<(), Aborted> {
        let mut st = self.shared.state.lock();
        loop {
            if !self.epoch_ok(&mut st) {
                return Err(Aborted);
            }
            match st.cc.write(self.id, item) {
                Verdict::Granted => {
                    Metrics::bump(&self.shared.metrics.writes);
                    st.buffers.write(self.id, item, value);
                    return Ok(());
                }
                Verdict::Ignored => {
                    Metrics::bump(&self.shared.metrics.ignored_writes);
                    return Ok(());
                }
                Verdict::Blocked => {
                    Metrics::bump(&self.shared.metrics.blocked_waits);
                    self.shared.cond.wait(&mut st);
                }
                Verdict::Abort => {
                    self.cleanup(&mut st);
                    return Err(Aborted);
                }
                Verdict::AbortAll => {
                    self.abort_all(&mut st);
                    return Err(Aborted);
                }
            }
        }
    }

    /// Commit: validate deferred writes, apply, release. Returns whether
    /// the transaction committed.
    fn commit(&mut self) -> bool {
        let mut st = self.shared.state.lock();
        if !self.epoch_ok(&mut st) {
            return false;
        }
        let writes = st.buffers.write_set(self.id);
        match st.cc.validate_commit(self.id, &writes) {
            CommitDecision::Commit { skip } => {
                for item in skip {
                    Metrics::bump(&self.shared.metrics.ignored_writes);
                    st.buffers.discard_item(self.id, item);
                }
                let State { store, buffers, .. } = &mut *st;
                buffers.apply(self.id, store);
                let _woken = st.cc.committed(self.id);
                self.shared.cond.notify_all();
                true
            }
            CommitDecision::Abort => {
                self.cleanup(&mut st);
                false
            }
            CommitDecision::AbortAll => {
                self.abort_all(&mut st);
                false
            }
        }
    }
}
