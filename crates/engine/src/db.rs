//! The database: sharded store + transaction-local write buffers + a
//! concurrent protocol, with a retrying transaction driver.
//!
//! Concurrency model — no global mutex:
//!
//! * **Values** live in a [`ShardedStore`]: items striped over
//!   independently locked shards. A read holds its item's shard across
//!   the protocol grant *and* the value fetch; a commit holds every shard
//!   of its write set (ascending, deadlock-free) across validation *and*
//!   apply. Grants and the data accesses they authorize are therefore
//!   atomic, and a commit becomes visible all-or-nothing — but
//!   transactions touching disjoint shards never serialize on the engine.
//! * **Write buffers are transaction-local** (the deferred-write scheme
//!   of VI-C-2): each [`Tx`] carries its own workspace, so buffering a
//!   write touches no shared state at all.
//! * **Protocol state** is behind [`ConcurrentCc`]: natively concurrent
//!   for the sharded MT(k) ([`crate::ShardedMtCc`]), or a sequential
//!   protocol wrapped in one mutex ([`SerializedCc`]) — the protocol
//!   decision is then serialized, but store access, buffering and waiting
//!   still are not.
//! * **Blocking** (2PL) parks on a wake-sequence condvar: waiters sample
//!   the sequence before asking for the lock and sleep only while it is
//!   unchanged, so a release between decision and sleep is never lost.
//! * **Ids, epochs and the logical clock** are plain atomics.
//! * **Durability** (optional, see [`crate::DurabilityConfig`]) frames
//!   every committed write set into a group-commit write-ahead log: the
//!   commit applies in memory first, and `run` acknowledges only after
//!   the commit's epoch is fsynced (`mdts-engine::durability`).
//!
//! Lock order: store shards (ascending) → protocol internals → wake
//! sequence → WAL epoch buffer. Nothing sleeps while holding a store
//! shard.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use mdts_core::{SharedMtScheduler, SnapshotRead};
use mdts_model::{ItemId, OpKind, TxId};
use mdts_storage::{
    recover, ConcurrentMvStore, CrashPoint, Recovered, ShardedStore, Store, WalValue,
    DEFAULT_STORE_SHARDS,
};
use mdts_trace::{AbortReason, StallRule, TraceEvent, TraceSink};

use crate::admission::{Admission, AdmissionConfig};
use crate::cc::{
    CommitDecision, ConcurrencyControl, ConcurrentCc, SerializedCc, ShardedMtCc, Verdict,
};
use crate::durability::{Durability, DurabilityConfig, CHECKPOINT_TX};
use crate::metrics::{EngineGauges, Metrics, MetricsSnapshot, Phase};

/// Terminal failure of [`Database::run`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxError {
    /// The transaction aborted more than `max_restarts` times.
    RetriesExhausted,
    /// The transaction committed *in memory* but the write-ahead log
    /// halted (crash injection or a real I/O failure) before its epoch
    /// was fsynced, so its durability acknowledgement never arrived.
    /// The commit is visible to later transactions in this process and
    /// is **not** retried — a retry would apply it twice; after a
    /// restart it may or may not be recovered.
    DurabilityUnknown,
}

impl std::fmt::Display for TxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxError::RetriesExhausted => write!(f, "transaction retries exhausted"),
            TxError::DurabilityUnknown => {
                write!(f, "committed in memory but the write-ahead log halted unacknowledged")
            }
        }
    }
}

impl std::error::Error for TxError {}

/// Control-flow marker: the current transaction incarnation has been
/// aborted; propagate with `?` out of the transaction closure.
#[derive(Debug)]
pub struct Aborted;

use crate::wakeseq::WakeSeq;

/// The multiversion serving path (MV-MT(k), III-D-6d): a concurrent
/// version-chain store stamped by — and a second handle to — the same
/// sharded MT(k) scheduler the write path validates against. Versions
/// store `Option<V>` so the floor of a never-written item is `None`,
/// matching [`Tx::read`]'s "never written" convention.
struct MvState<V> {
    store: ConcurrentMvStore<Option<V>>,
    sched: Arc<SharedMtScheduler>,
}

struct Shared<V> {
    store: ShardedStore<V>,
    cc: Box<dyn ConcurrentCc>,
    /// `Some` when the database serves read-only snapshot transactions
    /// from version chains (see [`Database::run_read_only`]).
    mv: Option<MvState<V>>,
    next_tx: AtomicU32,
    /// Logical clock: one tick per granted access and per applied commit.
    /// Commit latency is measured in these ticks (deterministic per
    /// interleaving, no wall clock).
    clock: AtomicU64,
    wake: WakeSeq,
    metrics: Metrics,
    name: &'static str,
    /// Engine-level decision trace (begin/abort/block/wake edges);
    /// disabled by default. The protocol's own events go to whatever sink
    /// is attached to it — point both at one buffer for a merged trace.
    trace: TraceSink,
    /// `Some` when commits are framed into a group-commit write-ahead
    /// log and acknowledged only once fsynced (see
    /// [`Database::with_store_concurrent_durable`]).
    durability: Option<Durability<V>>,
    /// `Some` when admission is epoch-batched through the staging queue
    /// (ISSUE 10, on by default; `MDTS_ADMIT_MODE=off` restores the
    /// serial admission path).
    admission: Option<Admission>,
}

impl<V> Shared<V> {
    fn wake_all(&self) {
        let seq = self.wake.bump();
        self.trace.emit(|| TraceEvent::Wake { seq });
    }
}

/// A transactional database over values `V`.
pub struct Database<V> {
    shared: Arc<Shared<V>>,
}

impl<V> Clone for Database<V> {
    fn clone(&self) -> Self {
        Database { shared: Arc::clone(&self.shared) }
    }
}

impl<V: Clone + Send + 'static> Database<V> {
    /// Empty database under a sequential protocol (wrapped in a
    /// [`SerializedCc`]).
    pub fn new(cc: Box<dyn ConcurrencyControl>) -> Self {
        Database::with_store(cc, Store::new())
    }

    /// Database with a pre-populated store, under a sequential protocol.
    pub fn with_store(cc: Box<dyn ConcurrencyControl>, store: Store<V>) -> Self {
        Database::with_store_concurrent(Box::new(SerializedCc::new(cc)), store)
    }

    /// Empty database under a natively concurrent protocol.
    pub fn new_concurrent(cc: Box<dyn ConcurrentCc>) -> Self {
        Database::with_store_concurrent(cc, Store::new())
    }

    /// Database with a pre-populated store, under a natively concurrent
    /// protocol.
    pub fn with_store_concurrent(cc: Box<dyn ConcurrentCc>, store: Store<V>) -> Self {
        Database::with_store_concurrent_traced(cc, store, TraceSink::disabled())
    }

    /// Empty database under a natively concurrent protocol, with the
    /// engine's decision trace routed to `trace`. Attach the *protocol's*
    /// trace to the same buffer (e.g. [`crate::ShardedMtCc::attach_trace`])
    /// for a merged, auditable event stream.
    pub fn new_concurrent_traced(cc: Box<dyn ConcurrentCc>, trace: TraceSink) -> Self {
        Database::with_store_concurrent_traced(cc, Store::new(), trace)
    }

    /// Database with a pre-populated store, a natively concurrent
    /// protocol, and an engine trace sink.
    pub fn with_store_concurrent_traced(
        cc: Box<dyn ConcurrentCc>,
        store: Store<V>,
        trace: TraceSink,
    ) -> Self {
        let name = cc.name();
        Database {
            shared: Arc::new(Shared {
                store: ShardedStore::from_store(store, DEFAULT_STORE_SHARDS),
                cc,
                mv: None,
                next_tx: AtomicU32::new(0),
                clock: AtomicU64::new(0),
                wake: WakeSeq::default(),
                metrics: Metrics::default(),
                name,
                trace,
                durability: None,
                admission: AdmissionConfig::from_env().map(Admission::new),
            }),
        }
    }

    /// Empty database under sharded MT(k) with the multiversion serving
    /// path enabled: read-only transactions run through
    /// [`Database::run_read_only`] and never abort, restart or block.
    pub fn new_multiversion(k: usize) -> Self
    where
        V: Sync,
    {
        Database::with_store_multiversion_traced(
            ShardedMtCc::new(k),
            Store::new(),
            TraceSink::disabled(),
        )
    }

    /// Database with a pre-populated store under sharded MT(k), with the
    /// multiversion serving path enabled and the engine trace routed to
    /// `trace`. Attach the protocol's trace to the same buffer *before*
    /// passing `cc` here (see [`ShardedMtCc::attach_trace`]) for a merged,
    /// auditable stream.
    pub fn with_store_multiversion_traced(
        cc: ShardedMtCc,
        store: Store<V>,
        trace: TraceSink,
    ) -> Self
    where
        V: Sync,
    {
        let sched = cc.scheduler_arc();
        Database {
            shared: Arc::new(Shared {
                store: ShardedStore::from_store(store, DEFAULT_STORE_SHARDS),
                cc: Box::new(cc),
                mv: Some(MvState { store: ConcurrentMvStore::new(), sched }),
                next_tx: AtomicU32::new(0),
                clock: AtomicU64::new(0),
                wake: WakeSeq::default(),
                metrics: Metrics::default(),
                name: "MV-MT(k)",
                trace,
                durability: None,
                admission: AdmissionConfig::from_env().map(Admission::new),
            }),
        }
    }

    /// Database with a pre-populated store, a natively concurrent
    /// protocol, an engine trace sink, and a **write-ahead log**: any
    /// existing log at `config.wal_path` is recovered first (its sealed
    /// epochs replayed over `store`), then a fresh log is started with a
    /// checkpoint of the merged state, and every subsequent commit is
    /// acknowledged only after its group-commit epoch is fsynced.
    ///
    /// Returns the database plus the [`Recovered`] report (what the old
    /// log contributed). When `config.journal_path` is set and `trace`
    /// is enabled on an **unbounded** buffer, the daemon also persists
    /// the decision trace epoch by epoch, fsynced before the epoch's WAL
    /// write, so a post-crash auditor can certify the recovered state.
    pub fn with_store_concurrent_durable(
        cc: Box<dyn ConcurrentCc>,
        store: Store<V>,
        trace: TraceSink,
        config: &DurabilityConfig,
    ) -> std::io::Result<(Self, Recovered<V>)>
    where
        V: WalValue + Send,
    {
        let (shared, recovered) = durable_parts(store, &trace, config)?;
        let name = cc.name();
        let db = Database {
            shared: Arc::new(Shared {
                store: shared.0,
                cc,
                mv: None,
                next_tx: shared.1,
                clock: shared.2,
                wake: WakeSeq::default(),
                metrics: Metrics::default(),
                name,
                trace,
                durability: Some(shared.3),
                admission: AdmissionConfig::from_env().map(Admission::new),
            }),
        };
        db.install_wal_checkpoint();
        Ok((db, recovered))
    }

    /// The durable counterpart of
    /// [`Database::with_store_multiversion_traced`]: sharded MT(k) with
    /// the multiversion serving path *and* the write-ahead log.
    pub fn with_store_multiversion_durable(
        cc: ShardedMtCc,
        store: Store<V>,
        trace: TraceSink,
        config: &DurabilityConfig,
    ) -> std::io::Result<(Self, Recovered<V>)>
    where
        V: WalValue + Send,
    {
        let (shared, recovered) = durable_parts(store, &trace, config)?;
        let sched = cc.scheduler_arc();
        let db = Database {
            shared: Arc::new(Shared {
                store: shared.0,
                cc: Box::new(cc),
                mv: Some(MvState { store: ConcurrentMvStore::new(), sched }),
                next_tx: shared.1,
                clock: shared.2,
                wake: WakeSeq::default(),
                metrics: Metrics::default(),
                name: "MV-MT(k)",
                trace,
                durability: Some(shared.3),
                admission: AdmissionConfig::from_env().map(Admission::new),
            }),
        };
        db.install_wal_checkpoint();
        Ok((db, recovered))
    }

    /// Hands the group-commit daemon its checkpoint snapshot encoder (a
    /// no-op without durability). The closure captures the store's own
    /// [`ShardedStore::shard_handle`] rather than any reference to
    /// `Shared`, so it never entangles the engine's reference counts —
    /// [`Database::configure_admission`]'s `Arc::get_mut` still sees an
    /// unshared allocation, and a rotation racing database teardown
    /// snapshots a still-valid store instead of a dangling engine.
    fn install_wal_checkpoint(&self)
    where
        V: WalValue,
    {
        let Some(durability) = &self.shared.durability else {
            return;
        };
        let store = self.shared.store.shard_handle();
        let mut writes: Vec<(ItemId, V)> = Vec::new();
        durability.install_checkpoint(Box::new(move |buf, lsn| {
            writes.clear();
            writes.extend(store.snapshot());
            mdts_storage::wal::encode_commit(buf, lsn, CHECKPOINT_TX, &writes, &[]);
            true
        }));
    }

    /// Whether the multiversion serving path is enabled.
    pub fn has_multiversion(&self) -> bool {
        self.shared.mv.is_some()
    }

    /// Whether commits are framed into a write-ahead log.
    pub fn has_durability(&self) -> bool {
        self.shared.durability.is_some()
    }

    /// Flushes the open WAL epoch (if any) and waits for it: `true` when
    /// everything committed so far is durable. Trivially `true` for a
    /// database without durability.
    pub fn sync(&self) -> bool {
        self.shared.durability.as_ref().is_none_or(Durability::sync)
    }

    /// Highest fsynced WAL epoch (0 without durability or before the
    /// first fsync).
    pub fn durable_epoch(&self) -> u64 {
        self.shared.durability.as_ref().map_or(0, Durability::durable_epoch)
    }

    /// Whether the write-ahead log halted on an append failure or an
    /// injected crash (later commits get
    /// [`TxError::DurabilityUnknown`]).
    pub fn wal_crashed(&self) -> bool {
        self.shared.durability.as_ref().is_some_and(Durability::crashed)
    }

    /// Arms a WAL crash-injection site (test hook; the group-commit
    /// daemon applies it before its next append). No-op without
    /// durability.
    pub fn set_crash_point(&self, point: CrashPoint) {
        if let Some(wal) = &self.shared.durability {
            wal.set_crash_point(point);
        }
    }

    /// Versions reclaimed by chain pruning so far (0 without the
    /// multiversion path).
    pub fn mv_pruned(&self) -> u64 {
        self.shared.mv.as_ref().map_or(0, |mv| mv.store.pruned())
    }

    /// Versions currently kept for `item` (0 without the multiversion
    /// path; test hook).
    pub fn mv_version_count(&self, item: ItemId) -> usize {
        self.shared.mv.as_ref().map_or(0, |mv| mv.store.version_count(item))
    }

    /// The protocol's display name.
    pub fn protocol_name(&self) -> &'static str {
        self.shared.name
    }

    /// Current committed contents (per-shard consistent; run an auditing
    /// transaction for a transactionally consistent view while writers
    /// are active).
    pub fn snapshot(&self) -> std::collections::BTreeMap<ItemId, V> {
        self.shared.store.snapshot()
    }

    /// Current counters. Order-cache hit/miss figures and the subsystem
    /// gauges are sampled from the protocol and the MV store at call time
    /// (they live in the scheduler and version store, not in the engine's
    /// counter block).
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.shared.metrics.snapshot();
        if let Some(stats) = self.shared.cc.order_cache_stats() {
            snap.order_cache_hits = stats.hits;
            snap.order_cache_misses = stats.misses;
            snap.order_cache_bulk_fills = stats.bulk_inserts;
        }
        if let Some(stats) = self.shared.cc.batched_compare_stats() {
            snap.batched_compares = stats.candidates;
        }
        if let Some(wal) = &self.shared.durability {
            let (commits, fsyncs, bytes) = wal.stats();
            snap.wal_commits = commits;
            snap.wal_fsyncs = fsyncs;
            snap.wal_bytes = bytes;
        }
        snap.gauges = self.gauges();
        snap
    }

    /// Point-in-time subsystem gauges: MV chains and GC, the scheduler's
    /// row table, order-cache epoch flushes. Cheap relative to a window
    /// interval (one registry scan + per-shard read locks), but not a
    /// per-transaction call.
    pub fn gauges(&self) -> EngineGauges {
        let mut g = EngineGauges::default();
        if let Some(mv) = &self.shared.mv {
            g.apply_mv(&mv.store.stats());
        }
        if let Some(sched) = self.shared.cc.scheduler_gauges() {
            g.sched_live_rows = sched.live_rows;
            g.sched_row_chunks = sched.row_chunks;
        }
        if let Some(stats) = self.shared.cc.order_cache_stats() {
            g.order_cache_epoch_flushes = stats.invalidations;
        }
        if let Some(stats) = self.shared.cc.batched_compare_stats() {
            g.batched_probe_batches = stats.probe_batches;
            g.batched_chain_batches = stats.chain_batches;
            g.batched_size_buckets = stats.size_buckets;
        }
        if let Some(wal) = &self.shared.durability {
            g.wal_durable_epoch = wal.durable_epoch();
            g.wal_pending_bytes = wal.pending_bytes();
            let (checkpoints, truncations) = wal.checkpoint_stats();
            g.wal_checkpoints = checkpoints;
            g.wal_truncations = truncations;
        }
        if let Some(adm) = &self.shared.admission {
            let s = adm.stats();
            g.admit_batches = s.batches;
            g.admit_batched_txns = s.batched_txns;
            g.admit_parked = s.parked;
            g.admit_max_batch = s.max_batch;
            g.admit_prewarm_pairs = s.prewarm_pairs;
            g.admit_queue_depth = s.queue_depth;
        }
        g
    }

    /// Replaces the admission pipeline (ISSUE 10): `Some` installs a
    /// staging queue with the given knobs, `None` restores the serial
    /// admission path. Call before the database is shared across threads
    /// — the oracle tests use this to compare batched and serial
    /// admission without relying on the environment.
    ///
    /// # Panics
    /// Panics if the database handle has already been cloned.
    pub fn configure_admission(&mut self, config: Option<AdmissionConfig>) {
        let shared = Arc::get_mut(&mut self.shared)
            .expect("configure_admission before sharing the database");
        shared.admission = config.map(Admission::new);
    }

    /// Admission-pipeline counters (zeros when admission batching is
    /// disabled).
    pub fn admission_stats(&self) -> crate::admission::AdmissionStats {
        self.shared.admission.as_ref().map(Admission::stats).unwrap_or_default()
    }

    /// Turns wall-time phase-span timing on or off (off by default; when
    /// off the spans cost one relaxed load each and never read the
    /// clock).
    pub fn set_phase_timing(&self, on: bool) {
        self.shared.metrics.phases.set_enabled(on);
    }

    /// Whether phase-span timing is currently enabled.
    pub fn phase_timing(&self) -> bool {
        self.shared.metrics.phases.enabled()
    }

    /// Records a stall-detector alert in the engine's decision trace
    /// (no-op when no sink is attached). The telemetry layer calls this
    /// so alerts interleave, sequence-stamped, with the protocol events
    /// they explain.
    pub fn emit_telemetry_alert(&self, window: u64, rule: StallRule, value: f64, baseline: f64) {
        self.shared.trace.emit(|| TraceEvent::TelemetryAlert { window, rule, value, baseline });
    }

    /// Runs `body` as a transaction, retrying on abort up to
    /// `max_restarts` times. The closure reads and writes through the
    /// [`Tx`] handle and must propagate [`Aborted`] with `?`.
    pub fn run<T>(
        &self,
        max_restarts: usize,
        body: impl FnMut(&mut Tx<'_, V>) -> Result<T, Aborted>,
    ) -> Result<T, TxError> {
        self.run_with_footprint(max_restarts, &[], body)
    }

    /// Like [`run`](Self::run), with the transaction's expected
    /// first-access items declared up front. On a batched-admission
    /// database the footprint is prewarmed through the shard-grouped
    /// probe lane during admission (ISSUE 10): the batch touches each
    /// `RT`/`WT` table region once and bulk-fills the order cache, so
    /// the accesses that follow are answered from the memo table. The
    /// footprint is advisory — accesses outside it are simply probed on
    /// the access path as before, and over-declaring only costs wasted
    /// probes.
    pub fn run_with_footprint<T>(
        &self,
        max_restarts: usize,
        footprint: &[ItemId],
        mut body: impl FnMut(&mut Tx<'_, V>) -> Result<T, Aborted>,
    ) -> Result<T, TxError> {
        let shared = &*self.shared;
        let start_tick = shared.clock.load(Ordering::Relaxed);
        let mut prev: Option<TxId> = None;
        // One workspace for the whole retry loop: a restarted incarnation
        // re-fills the buffers its predecessor already grew, so a restart
        // storm does not churn the allocator.
        let mut scratch = TxScratch::default();
        // Backoff escalation is tracked separately from the attempt count:
        // an admission that parked in the staging queue was already
        // staggered by the queue wait, so it resets the escalation
        // instead of compounding it (the double-penalty fix, ISSUE 10).
        let mut backoff_attempt = 0usize;
        let mut parked_last = false;
        for attempt in 0..=max_restarts {
            let span = shared.metrics.phases.start();
            let id = match &shared.admission {
                Some(adm) => {
                    let (id, parked) = adm.admit(
                        shared.cc.as_ref(),
                        &shared.next_tx,
                        &shared.trace,
                        prev,
                        footprint,
                        &mut scratch.pairs,
                    );
                    if parked {
                        backoff_attempt = 0;
                    }
                    parked_last = parked;
                    id
                }
                None => {
                    let id = TxId(shared.next_tx.fetch_add(1, Ordering::Relaxed) + 1);
                    shared.trace.emit(|| TraceEvent::Begin { tx: id });
                    match prev {
                        Some(p) => shared.cc.begin_restarted(id, p),
                        None => shared.cc.begin(id),
                    }
                    id
                }
            };
            shared.metrics.phases.record_since(Phase::Admission, span);
            let epoch = shared.cc.epoch();
            let mut tx = Tx { shared, id, epoch, scratch: std::mem::take(&mut scratch) };
            if let Ok(value) = body(&mut tx) {
                let span = shared.metrics.phases.start();
                let outcome = tx.commit();
                shared.metrics.phases.record_since(Phase::Commit, span);
                if let CommitOutcome::Committed { wal_epoch } = outcome {
                    Metrics::bump(&shared.metrics.commits);
                    let end_tick = shared.clock.load(Ordering::Relaxed);
                    shared.metrics.latency.record(end_tick.saturating_sub(start_tick));
                    let durable = match wal_epoch {
                        None => true,
                        Some(epoch) => {
                            let wal =
                                shared.durability.as_ref().expect("a WAL epoch implies durability");
                            let span = shared.metrics.phases.start();
                            let ok = wal.wait_durable(epoch);
                            shared.metrics.phases.record_since(Phase::FsyncWait, span);
                            ok
                        }
                    };
                    if durable {
                        return Ok(value);
                    }
                    // Applied in memory but never acknowledged: surface
                    // the uncertainty instead of retrying — a retry
                    // would apply the transaction twice.
                    Metrics::bump(&shared.metrics.wal_unacked);
                    return Err(TxError::DurabilityUnknown);
                }
            }
            // The failing call already cleaned up this incarnation; take the
            // (cleared) buffers back for the next one.
            scratch = std::mem::take(&mut tx.scratch);
            prev = Some(id);
            if attempt < max_restarts {
                Metrics::bump(&shared.metrics.restarts);
                let span = shared.metrics.phases.start();
                if parked_last {
                    // This incarnation already waited its turn in the
                    // staging queue; sleeping the jittered backoff on top
                    // would penalize it twice. Yield and re-admit — the
                    // queue itself staggers the retry.
                    std::thread::yield_now();
                } else {
                    restart_backoff(backoff_attempt, id.0);
                }
                backoff_attempt += 1;
                shared.metrics.phases.record_since(Phase::Backoff, span);
            }
        }
        Metrics::bump(&shared.metrics.gave_up);
        shared.trace.emit(|| TraceEvent::GaveUp {
            tx: prev.expect("at least one attempt ran"),
            restarts: max_restarts as u64,
        });
        Err(TxError::RetriesExhausted)
    }

    /// Runs `body` as a read-only snapshot transaction on the
    /// multiversion serving path: every read slots the reader into the
    /// gap between two chain writers — the MV-MT(k) rule of III-D-6d.
    /// The reader is a real (visible) transaction: it takes `RT`
    /// entries like any reader, which is what pins its reads against
    /// future writers, but a read that cannot be ordered after the
    /// current holders is served from an *older* version instead of
    /// rejected. Snapshot transactions therefore **never abort, never
    /// restart and never block a writer**; `body` runs exactly once and
    /// its value is returned directly.
    ///
    /// # Panics
    /// Panics if the database was not built with the multiversion path
    /// (see [`Database::new_multiversion`]).
    pub fn run_read_only<T>(&self, body: impl FnOnce(&mut SnapshotTx<'_, V>) -> T) -> T
    where
        V: Sync,
    {
        let shared = &*self.shared;
        let mv = shared.mv.as_ref().expect("snapshot transactions need the multiversion path");
        let start_tick = shared.clock.load(Ordering::Relaxed);
        let id = TxId(shared.next_tx.fetch_add(1, Ordering::Relaxed) + 1);
        shared.trace.emit(|| TraceEvent::Begin { tx: id });
        // Allocate the reader's row up front so the reads themselves
        // stay allocation-free.
        let span = shared.metrics.phases.start();
        mv.sched.begin(id);
        shared.metrics.phases.record_since(Phase::Admission, span);
        // Register with GC *before* the first read (and therefore before
        // the reader's first vector element is defined): the captured
        // ticket is what keeps pruning away from every version this
        // reader may still descend to.
        let guard = mv.store.begin_snapshot();
        let mut tx = SnapshotTx { shared, mv, id, _guard: guard };
        let out = body(&mut tx);
        let span = shared.metrics.phases.start();
        mv.sched.commit(id);
        shared.metrics.phases.record_since(Phase::Commit, span);
        Metrics::bump(&shared.metrics.snapshot_txns);
        Metrics::bump(&shared.metrics.commits);
        let end_tick = shared.clock.load(Ordering::Relaxed);
        shared.metrics.latency.record(end_tick.saturating_sub(start_tick));
        shared.trace.emit(|| TraceEvent::Commit { tx: id });
        out
    }
}

/// A live read-only snapshot transaction (see
/// [`Database::run_read_only`]). Reads cannot fail, so there is no
/// [`Aborted`] plumbing; at `k ≤ 6` a steady-state read makes zero
/// allocations (shard mutexes, row locks, inline vector elements).
pub struct SnapshotTx<'a, V> {
    shared: &'a Shared<V>,
    mv: &'a MvState<V>,
    id: TxId,
    _guard: mdts_storage::SnapshotGuard<'a>,
}

impl<V: Clone + Send + Sync + 'static> SnapshotTx<'_, V> {
    /// This snapshot transaction's id (unique, for trace attribution).
    pub fn id(&self) -> TxId {
        self.id
    }

    /// Reads `item`: the current committed value when the reader orders
    /// after the item's holders ([`SnapshotRead::Current`]), else the
    /// newest chain version whose writer's stamp orders before this
    /// reader. `None` means the item had never been written below the
    /// reader's position.
    pub fn read(&mut self, item: ItemId) -> Option<V> {
        let shared = self.shared;
        let id = self.id;
        let sched = &self.mv.sched;
        Metrics::bump(&shared.metrics.snapshot_reads);
        shared.clock.fetch_add(1, Ordering::Relaxed);
        // Pin the item's store shard first (the engine's read lock
        // order). Commits hold every write-set shard across validate +
        // install + apply, so under the shard lock the `RT`/`WT`
        // holders, the version chain and the stored value are mutually
        // consistent: the `WT` holder's version *is* the chain tail and
        // the stored value.
        let shard_idx = shared.store.shard_index(item);
        let shard = shared.store.lock_shard(shard_idx);
        match sched.snapshot_read(id, item) {
            SnapshotRead::Current => {
                // Ordered after both holders and now the RT holder: the
                // current committed value is this reader's version, and
                // every future writer is forced above the reader (or
                // refused without installing), so the read stays the
                // newest one below the reader forever.
                let mv = &self.mv;
                shared.trace.emit(|| {
                    // Chain walk only when a sink is attached — the hot
                    // path never takes the chain lock for tracing.
                    let writer = mv
                        .store
                        .with_chain(item, |chain| chain.last().map(|v| v.writer))
                        .unwrap_or(TxId::VIRTUAL);
                    TraceEvent::VersionRead { tx: id, item, writer }
                });
                shard.get(&item).cloned()
            }
            SnapshotRead::Older => {
                // Decided below one of the current holders — protected
                // transitively, but the current value may be too new.
                // Walk the chain newest → oldest: the first version
                // whose (saturated) stamp orders before the reader is
                // the one to serve; every newer version's stamp was
                // decided *greater*, and write-once vectors keep those
                // decisions stable. The walk always selects: the
                // reader's pivot — the newest version installed before
                // its begin ticket, which GC never reclaims —
                // fetch-maxed its stamp into the column maxima before
                // the reader's first (boosted) element was defined, so
                // the reader orders strictly after it (the T₀ floor,
                // stamped ⟨0,*,…⟩, is the degenerate case).
                let span = shared.metrics.phases.start();
                let selected = self.mv.store.with_chain(item, |chain| {
                    // ISSUE 8: one batched SIMD compare of the reader
                    // against the whole segment replaces per-version
                    // lock/compare round-trips; only a version whose
                    // order is still open falls back to the define loop.
                    if let Some(i) = sched.snapshot_newest_visible(
                        id,
                        chain.len(),
                        |i| &chain[i].stamp,
                        |i| chain[i].writer,
                    ) {
                        let writer = chain[i].writer;
                        shared.trace.emit(|| TraceEvent::VersionRead { tx: id, item, writer });
                        return Some(chain[i].value.clone());
                    }
                    let oldest = chain.first()?;
                    // Unreachable per the GC contract; serve the oldest
                    // retained version, attributed truthfully so an
                    // audit flags the ordering breach instead of
                    // masking it.
                    debug_assert!(false, "snapshot walk descended past its pivot");
                    let writer = oldest.writer;
                    shared.trace.emit(|| TraceEvent::VersionRead { tx: id, item, writer });
                    Some(oldest.value.clone())
                });
                shared.metrics.phases.record_since(Phase::ChainWalk, span);
                selected.unwrap_or_else(|| {
                    // Empty chain: the item has never been written (the
                    // outranking holder is a reader, or a writer whose
                    // write was Thomas-ignored), so the base value is
                    // the one below every transaction.
                    let base = shard.get(&item).cloned();
                    shared.trace.emit(|| TraceEvent::VersionRead {
                        tx: id,
                        item,
                        writer: TxId::VIRTUAL,
                    });
                    base
                })
            }
        }
    }
}

/// Bounded exponential backoff between restart attempts.
///
/// A restarted transaction re-enters the conflict window immediately, and
/// under a hot-spot restart storm every retry adds load exactly where the
/// system is already saturated: each extra abort increases the reference
/// churn every *other* in-flight validation sees, so the storm feeds
/// itself. Yielding for the first couple of attempts keeps short conflicts
/// cheap; after that the loser sleeps, doubling from 25 µs up to ~1.6 ms,
/// shedding load instead of re-adding it. The jitter (derived from the
/// aborted incarnation's id — this crate deliberately has no `rand`
/// dependency) keeps a crowd of losers from re-colliding in lockstep.
fn restart_backoff(attempt: usize, id_salt: u32) {
    if attempt < 3 {
        std::thread::yield_now();
        return;
    }
    let shift = (attempt - 3).min(4) as u32;
    let base = 25u64 << shift;
    let jitter = (u64::from(id_salt.wrapping_mul(0x9E37_79B9)) >> 16 << shift) >> 11;
    std::thread::sleep(std::time::Duration::from_micros(base + jitter));
}

/// Recover + checkpoint + daemon start, shared by the durable
/// constructors: replay any sealed epochs at `config.wal_path` over
/// `store`, start a fresh log whose first epoch checkpoints the merged
/// state under [`crate::durability::CHECKPOINT_TX`], and seed the id and
/// clock counters so recovered history stays monotone.
#[allow(clippy::type_complexity)]
fn durable_parts<V: Clone + Send + WalValue>(
    mut store: Store<V>,
    trace: &TraceSink,
    config: &DurabilityConfig,
) -> std::io::Result<((ShardedStore<V>, AtomicU32, AtomicU64, Durability<V>), Recovered<V>)> {
    let recovered = recover::<V>(&config.wal_path)?;
    for (item, value) in recovered.store.iter() {
        store.set(item, value.clone());
    }
    let checkpoint: Vec<(ItemId, V)> =
        store.iter().map(|(item, value)| (item, value.clone())).collect();
    let durability =
        Durability::start(config, &checkpoint, recovered.last_lsn + 1, trace.buffer().cloned())?;
    Ok((
        (
            ShardedStore::from_store(store, DEFAULT_STORE_SHARDS),
            AtomicU32::new(recovered.max_tx),
            AtomicU64::new(recovered.last_lsn),
            durability,
        ),
        recovered,
    ))
}

/// What [`Tx::commit`] produced.
enum CommitOutcome {
    /// Committed in memory; on a durable database `wal_epoch` carries the
    /// group-commit epoch whose fsync must be awaited before the commit
    /// may be acknowledged.
    Committed { wal_epoch: Option<u64> },
    /// This incarnation aborted (cleanup already ran).
    Aborted,
}

/// Reusable transaction-local buffers, recycled across restart attempts
/// by [`Database::run`]: after the first incarnation grows them, retries
/// of the same workload run allocation-free in the engine layer.
struct TxScratch<V> {
    /// Deferred-write workspace (last write per item wins); applied at
    /// commit, cleared on abort.
    writes: Vec<(ItemId, V)>,
    /// Commit-time write-set items, in validation order.
    items: Vec<ItemId>,
    /// Commit-time store-shard indices (sorted, deduped).
    shard_idxs: Vec<usize>,
    /// Admission prewarm `(item, tx)` pairs (ISSUE 10), recycled across
    /// restart attempts like the rest of the workspace.
    pairs: Vec<(ItemId, TxId)>,
}

impl<V> Default for TxScratch<V> {
    fn default() -> Self {
        TxScratch {
            writes: Vec::new(),
            items: Vec::new(),
            shard_idxs: Vec::new(),
            pairs: Vec::new(),
        }
    }
}

/// A live transaction handle.
pub struct Tx<'a, V> {
    shared: &'a Shared<V>,
    id: TxId,
    epoch: u64,
    scratch: TxScratch<V>,
}

impl<V: Clone + Send + 'static> Tx<'_, V> {
    /// This incarnation's transaction id.
    pub fn id(&self) -> TxId {
        self.id
    }

    fn tick(&self) {
        self.shared.clock.fetch_add(1, Ordering::Relaxed);
    }

    /// Parks on the wake sequence and charges the wait: its duration in
    /// logical ticks goes to the always-on `block_wait_ticks` histogram
    /// (two relaxed loads), its wall time to the `BlockWait` phase span
    /// when timing is enabled.
    fn blocked_wait(&self, seen: u64) {
        let t0 = self.shared.clock.load(Ordering::Relaxed);
        let span = self.shared.metrics.phases.start();
        self.shared.wake.wait_past(seen);
        self.shared.metrics.phases.record_since(Phase::BlockWait, span);
        let t1 = self.shared.clock.load(Ordering::Relaxed);
        self.shared.metrics.block_wait_ticks.record(t1.saturating_sub(t0));
    }

    /// Abort bookkeeping for this incarnation, attributed to `reason`
    /// (the trace layer's abort taxonomy). The workspace is
    /// transaction-local, so dropping the handle discards it.
    fn cleanup(&mut self, reason: AbortReason) {
        self.scratch.writes.clear();
        self.shared.cc.aborted(self.id);
        Metrics::bump(&self.shared.metrics.aborts);
        Metrics::bump(match reason {
            AbortReason::AccessRejected => &self.shared.metrics.access_aborts,
            AbortReason::ValidationRejected => &self.shared.metrics.validation_aborts,
            AbortReason::Epoch => &self.shared.metrics.epoch_aborts,
        });
        let tx = self.id;
        self.shared.trace.emit(|| TraceEvent::EngineAbort { tx, reason });
        self.shared.wake_all();
    }

    /// Detects an abort-all epoch change since this incarnation began.
    /// Called once per operation up front, and again after any grant —
    /// the protocol bumps its epoch inside its own critical section, so a
    /// grant obtained from post-reset protocol state is always detected
    /// by the re-check.
    fn epoch_ok(&mut self) -> bool {
        if self.shared.cc.epoch() == self.epoch {
            return true;
        }
        self.cleanup(AbortReason::Epoch);
        false
    }

    /// Reads an item (own uncommitted writes are visible; nobody else's
    /// are). `Ok(None)` means the item has never been written.
    pub fn read(&mut self, item: ItemId) -> Result<Option<V>, Aborted> {
        loop {
            if !self.epoch_ok() {
                return Err(Aborted);
            }
            let seen = self.shared.wake.current();
            // Hold the item's store shard across grant + fetch: a
            // concurrent commit of this item cannot apply in between, so
            // the value read is exactly the one the grant authorized.
            let verdict = {
                let shard_idx = self.shared.store.shard_index(item);
                let shard = self.shared.store.lock_shard(shard_idx);
                let v = self.shared.cc.read(self.id, item);
                if matches!(v, Verdict::Granted | Verdict::Ignored) {
                    let stored = shard.get(&item).cloned();
                    drop(shard);
                    if !self.epoch_ok() {
                        return Err(Aborted);
                    }
                    Metrics::bump(&self.shared.metrics.reads);
                    self.shared.metrics.bump_shard(shard_idx);
                    self.tick();
                    let own = self
                        .scratch
                        .writes
                        .iter()
                        .rev()
                        .find(|(i, _)| *i == item)
                        .map(|(_, v)| v.clone());
                    return Ok(own.or(stored));
                }
                v
            };
            match verdict {
                Verdict::Blocked => {
                    Metrics::bump(&self.shared.metrics.blocked_waits);
                    let tx = self.id;
                    self.shared.trace.emit(|| TraceEvent::Blocked {
                        tx,
                        item,
                        kind: OpKind::Read,
                        wake_seen: seen,
                    });
                    self.blocked_wait(seen);
                }
                Verdict::Abort => {
                    self.cleanup(AbortReason::AccessRejected);
                    return Err(Aborted);
                }
                Verdict::AbortAll => {
                    self.cleanup(AbortReason::Epoch);
                    return Err(Aborted);
                }
                Verdict::Granted | Verdict::Ignored => unreachable!("handled under the shard"),
            }
        }
    }

    /// Writes an item into the private workspace (applied at commit).
    pub fn write(&mut self, item: ItemId, value: V) -> Result<(), Aborted> {
        loop {
            if !self.epoch_ok() {
                return Err(Aborted);
            }
            let seen = self.shared.wake.current();
            // No store access here — the value stays transaction-local
            // until commit, so no shard lock is needed either.
            match self.shared.cc.write(self.id, item) {
                Verdict::Granted => {
                    if !self.epoch_ok() {
                        return Err(Aborted);
                    }
                    Metrics::bump(&self.shared.metrics.writes);
                    self.tick();
                    match self.scratch.writes.iter_mut().find(|(i, _)| *i == item) {
                        Some(slot) => slot.1 = value,
                        None => self.scratch.writes.push((item, value)),
                    }
                    return Ok(());
                }
                Verdict::Ignored => {
                    Metrics::bump(&self.shared.metrics.ignored_writes);
                    return Ok(());
                }
                Verdict::Blocked => {
                    Metrics::bump(&self.shared.metrics.blocked_waits);
                    let tx = self.id;
                    self.shared.trace.emit(|| TraceEvent::Blocked {
                        tx,
                        item,
                        kind: OpKind::Write,
                        wake_seen: seen,
                    });
                    self.blocked_wait(seen);
                }
                Verdict::Abort => {
                    self.cleanup(AbortReason::AccessRejected);
                    return Err(Aborted);
                }
                Verdict::AbortAll => {
                    self.cleanup(AbortReason::Epoch);
                    return Err(Aborted);
                }
            }
        }
    }

    /// Commit: validate deferred writes, frame into the WAL epoch (when
    /// durable), apply, release. The caller awaits the returned WAL
    /// epoch *outside* the commit critical section.
    fn commit(&mut self) -> CommitOutcome {
        if !self.epoch_ok() {
            return CommitOutcome::Aborted;
        }
        // Deterministic order for validation and apply, and the ascending
        // shard order the deadlock-freedom argument needs. The item and
        // shard-index buffers are recycled across restart attempts.
        self.scratch.writes.sort_by_key(|(item, _)| *item);
        self.scratch.items.clear();
        self.scratch.items.extend(self.scratch.writes.iter().map(|(item, _)| *item));
        self.scratch.shard_idxs.clear();
        self.scratch
            .shard_idxs
            .extend(self.scratch.items.iter().map(|&i| self.shared.store.shard_index(i)));
        self.scratch.shard_idxs.sort_unstable();
        self.scratch.shard_idxs.dedup();
        // Hold every write-set shard across validate + apply: the commit
        // is atomic against any reader (readers hold their item's shard
        // across grant + fetch) — visible entirely or not at all.
        let mut guards: Vec<_> =
            self.scratch.shard_idxs.iter().map(|&i| self.shared.store.lock_shard(i)).collect();
        match self.shared.cc.validate_commit(self.id, &self.scratch.items) {
            CommitDecision::Commit { skip } => {
                if self.shared.cc.epoch() != self.epoch {
                    drop(guards);
                    self.cleanup(AbortReason::Epoch);
                    return CommitOutcome::Aborted;
                }
                // Durable path: emit the commit event *before* framing
                // the record — the daemon journals and fsyncs the trace
                // slice ahead of the epoch's WAL fsync, so every
                // WAL-durable transaction's commit event reaches the
                // journal first. Then frame the still-undrained write
                // set (minus the Thomas-skipped items) into the open
                // epoch. Both happen under every write-set shard, so
                // log order equals apply order on every item.
                let wal_epoch = self.shared.durability.as_ref().map(|wal| {
                    let tx = self.id;
                    self.shared.trace.emit(|| TraceEvent::Commit { tx });
                    wal.enqueue(tx, &self.scratch.writes, &skip)
                });
                // Multiversion path: saturate this writer's vector into a
                // frozen stamp once, then install one version per applied
                // write. Still under every write-set store shard, so chain
                // append order equals write-grant order per item, and
                // Thomas-ignored writes install nothing.
                let mv_stamp = match &self.shared.mv {
                    Some(mv) if !self.scratch.writes.is_empty() => {
                        Some((mv, mv.sched.stamp_commit(self.id)))
                    }
                    _ => None,
                };
                for (item, value) in self.scratch.writes.drain(..) {
                    if skip.contains(&item) {
                        Metrics::bump(&self.shared.metrics.ignored_writes);
                        continue;
                    }
                    let shard_idx = self.shared.store.shard_index(item);
                    let slot = self
                        .scratch
                        .shard_idxs
                        .binary_search(&shard_idx)
                        .expect("shard of a write-set item was locked");
                    if let Some((mv, stamp)) = &mv_stamp {
                        // The pre-apply store value seeds the chain floor
                        // on first install (attributed to T₀).
                        let pre = guards[slot].get(&item).cloned();
                        let id = self.id;
                        let trace = &self.shared.trace;
                        mv.store.install_with(
                            item,
                            id,
                            stamp.clone(),
                            Some(value.clone()),
                            || pre,
                            |_seq| trace.emit(|| TraceEvent::VersionInstall { writer: id, item }),
                        );
                    }
                    guards[slot].insert(item, value);
                    self.shared.metrics.bump_shard(shard_idx);
                }
                self.tick();
                drop(guards);
                self.shared.cc.committed(self.id);
                if wal_epoch.is_none() {
                    let tx = self.id;
                    self.shared.trace.emit(|| TraceEvent::Commit { tx });
                }
                self.shared.wake_all();
                CommitOutcome::Committed { wal_epoch }
            }
            CommitDecision::Abort => {
                drop(guards);
                self.cleanup(AbortReason::ValidationRejected);
                CommitOutcome::Aborted
            }
            CommitDecision::AbortAll => {
                drop(guards);
                self.cleanup(AbortReason::Epoch);
                CommitOutcome::Aborted
            }
        }
    }
}
