//! The timestamp table of Fig. 2: one vector row per transaction, plus the
//! per-item `RT(x)`/`WT(x)` indices locating the most recent reader and
//! writer, plus the k-th-column counters.

use std::fmt;

use mdts_model::{ItemId, TxId};
use mdts_vector::{CmpResult, KthCounters, ScalarComparator, TsVec};

/// The MT(k) timestamp table (Fig. 2).
///
/// Rows are timestamp vectors indexed by transaction id; row 0 is the
/// virtual transaction `T₀` with `TS(0) = ⟨0, *, …⟩`, which "reads and
/// writes all data items before any other transaction" and is never
/// reclaimed. `RT(x)`/`WT(x)` start at 0 for every item accordingly
/// (Algorithm 1, lines 2–3).
#[derive(Clone, Debug)]
pub struct TimestampTable {
    k: usize,
    /// Vector per transaction id; `None` = never begun or reclaimed.
    vectors: Vec<Option<TsVec>>,
    /// `RT(x)` per item id.
    rt: Vec<TxId>,
    /// `WT(x)` per item id.
    wt: Vec<TxId>,
    counters: KthCounters,
}

impl TimestampTable {
    /// Fresh table for vectors of dimension `k`.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        TimestampTable {
            k,
            vectors: vec![Some(TsVec::origin(k))],
            rt: Vec::new(),
            wt: Vec::new(),
            counters: KthCounters::new(),
        }
    }

    /// Replaces the default counters (DMT(k) installs site-tagged ones).
    pub fn with_counters(mut self, counters: KthCounters) -> Self {
        self.counters = counters;
        self
    }

    /// Vector dimension `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Mutable access to the k-th-column counters.
    pub fn counters_mut(&mut self) -> &mut KthCounters {
        &mut self.counters
    }

    /// The counters (for inspection).
    pub fn counters(&self) -> &KthCounters {
        &self.counters
    }

    /// Swaps the table's counters with `other` — DMT(k) swaps in the
    /// *scheduling site's* site-tagged counters for the duration of each
    /// operation, so k-th-column values carry that site's tag
    /// (Section V-B-1).
    pub fn swap_counters(&mut self, other: &mut KthCounters) {
        std::mem::swap(&mut self.counters, other);
    }

    /// Ensures a (fully undefined) vector exists for `tx`.
    pub fn ensure_tx(&mut self, tx: TxId) {
        let idx = tx.index();
        if idx >= self.vectors.len() {
            self.vectors.resize(idx + 1, None);
        }
        if self.vectors[idx].is_none() {
            self.vectors[idx] = Some(TsVec::undefined(self.k));
        }
    }

    /// Installs an explicit initial vector for `tx` — used by the
    /// starvation-avoidance restart, which pre-sets the first element
    /// (Section III-D-4).
    pub fn install(&mut self, tx: TxId, vector: TsVec) {
        assert_eq!(vector.k(), self.k);
        let idx = tx.index();
        if idx >= self.vectors.len() {
            self.vectors.resize(idx + 1, None);
        }
        self.vectors[idx] = Some(vector);
    }

    /// `TS(tx)`, if the transaction has a live vector.
    pub fn ts(&self, tx: TxId) -> Option<&TsVec> {
        self.vectors.get(tx.index()).and_then(|v| v.as_ref())
    }

    /// `TS(tx)`, panicking if absent (protocol invariant: every transaction
    /// referenced by `RT`/`WT` or being scheduled has a vector).
    pub fn ts_expect(&self, tx: TxId) -> &TsVec {
        self.ts(tx).unwrap_or_else(|| panic!("no live timestamp vector for {tx}"))
    }

    /// Mutable `TS(tx)`.
    pub fn ts_mut(&mut self, tx: TxId) -> &mut TsVec {
        self.vectors
            .get_mut(tx.index())
            .and_then(|v| v.as_mut())
            .unwrap_or_else(|| panic!("no live timestamp vector for {tx}"))
    }

    fn ensure_item(&mut self, item: ItemId) {
        let idx = item.index();
        if idx >= self.rt.len() {
            self.rt.resize(idx + 1, TxId::VIRTUAL);
            self.wt.resize(idx + 1, TxId::VIRTUAL);
        }
    }

    /// `RT(x)` — index of the most recent reader (Algorithm 1 line 3
    /// default: `T₀`).
    pub fn rt(&self, item: ItemId) -> TxId {
        self.rt.get(item.index()).copied().unwrap_or(TxId::VIRTUAL)
    }

    /// `WT(x)` — index of the most recent writer.
    pub fn wt(&self, item: ItemId) -> TxId {
        self.wt.get(item.index()).copied().unwrap_or(TxId::VIRTUAL)
    }

    /// Sets `RT(x) := tx` (Algorithm 1 line 7).
    pub fn set_rt(&mut self, item: ItemId, tx: TxId) {
        self.ensure_item(item);
        self.rt[item.index()] = tx;
    }

    /// Sets `WT(x) := tx` (Algorithm 1 line 12).
    pub fn set_wt(&mut self, item: ItemId, tx: TxId) {
        self.ensure_item(item);
        self.wt[item.index()] = tx;
    }

    /// Definition 6 comparison of two transactions' vectors.
    pub fn compare(&self, a: TxId, b: TxId) -> CmpResult {
        ScalarComparator::compare(self.ts_expect(a), self.ts_expect(b))
    }

    /// Strict `TS(a) < TS(b)`.
    pub fn is_less(&self, a: TxId, b: TxId) -> bool {
        matches!(self.compare(a, b), CmpResult::Less { .. })
    }

    /// Whether `tx` is currently the most recent reader or writer of any
    /// item — if so its vector must not be reclaimed (Section III-D-6b).
    pub fn is_referenced(&self, tx: TxId) -> bool {
        self.rt.iter().chain(self.wt.iter()).any(|&t| t == tx)
    }

    /// Storage reclamation (Section III-D-6b): drops the vector of a
    /// committed transaction if it is no longer any item's most recent
    /// read/write timestamp. Returns whether the row was reclaimed. `T₀` is
    /// never reclaimed.
    pub fn reclaim(&mut self, tx: TxId) -> bool {
        if tx.is_virtual() || self.is_referenced(tx) {
            return false;
        }
        if let Some(slot) = self.vectors.get_mut(tx.index()) {
            if slot.is_some() {
                *slot = None;
                return true;
            }
        }
        false
    }

    /// Number of live vector rows (including `T₀`) — the table footprint
    /// the paper argues "normally fits in main memory" (III-D-6a).
    pub fn live_rows(&self) -> usize {
        self.vectors.iter().filter(|v| v.is_some()).count()
    }

    /// All live transactions, ascending.
    pub fn live_txns(&self) -> Vec<TxId> {
        self.vectors
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_ref().map(|_| TxId(i as u32)))
            .collect()
    }

    /// A serialization order for the given transactions: a topological sort
    /// of the strict vector order (Theorem 2's witness). Returns `None` if
    /// some needed vector is missing.
    ///
    /// The vector order is a partial order (Lemmas 1–2); unordered pairs
    /// are free, so a simple insertion by pairwise comparison suffices.
    pub fn serial_order(&self, txns: &[TxId]) -> Option<Vec<TxId>> {
        for &t in txns {
            self.ts(t)?;
        }
        // Insertion topological sort: place each transaction before the
        // first already-placed transaction that must follow it. Correctness
        // relies on transitivity of `<` (Lemma 1).
        let mut order: Vec<TxId> = Vec::with_capacity(txns.len());
        for &t in txns {
            let pos = order
                .iter()
                .position(|&u| self.is_less(t, u))
                .unwrap_or(order.len());
            order.insert(pos, t);
        }
        // Verify (cheap, and guards against future regressions).
        for a in 0..order.len() {
            for b in (a + 1)..order.len() {
                if self.is_less(order[b], order[a]) {
                    return None;
                }
            }
        }
        Some(order)
    }
}

impl fmt::Display for TimestampTable {
    /// Renders the table in the paper's style: one `TS(i) = ⟨…⟩` row per
    /// live transaction, then the `RT`/`WT` columns per touched item.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "timestamp table (k = {}):", self.k)?;
        for (i, v) in self.vectors.iter().enumerate() {
            if let Some(ts) = v {
                writeln!(f, "  TS({i}) = {ts}")?;
            }
        }
        for idx in 0..self.rt.len() {
            writeln!(f, "  item {idx}: RT = {}, WT = {}", self.rt[idx].0, self.wt[idx].0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_matches_algorithm1() {
        let t = TimestampTable::new(2);
        assert_eq!(t.ts_expect(TxId::VIRTUAL).to_string(), "<0,*>");
        assert_eq!(t.rt(ItemId(5)), TxId::VIRTUAL);
        assert_eq!(t.wt(ItemId(5)), TxId::VIRTUAL);
        assert_eq!(t.counters().ucount(), 1);
        assert_eq!(t.counters().lcount(), 0);
    }

    #[test]
    fn ensure_tx_is_idempotent() {
        let mut t = TimestampTable::new(2);
        t.ensure_tx(TxId(3));
        t.ts_mut(TxId(3)).define(0, 7);
        t.ensure_tx(TxId(3));
        assert_eq!(t.ts_expect(TxId(3)).get(0), Some(7), "existing vector untouched");
    }

    #[test]
    fn reclaim_respects_references_and_t0() {
        let mut t = TimestampTable::new(2);
        t.ensure_tx(TxId(1));
        t.set_rt(ItemId(0), TxId(1));
        assert!(!t.reclaim(TxId(1)), "still RT(x)");
        t.set_rt(ItemId(0), TxId(2));
        assert!(t.reclaim(TxId(1)));
        assert!(!t.reclaim(TxId(1)), "already gone");
        assert!(!t.reclaim(TxId::VIRTUAL), "T0 is permanent");
        assert_eq!(t.live_rows(), 1);
    }

    #[test]
    fn serial_order_sorts_by_vector_order() {
        let mut t = TimestampTable::new(2);
        // Example 2's resulting vectors: T1=<1,2>, T2=<1,1>, T3=<1,0>.
        t.install(TxId(1), TsVec::from_elems(&[Some(1), Some(2)]));
        t.install(TxId(2), TsVec::from_elems(&[Some(1), Some(1)]));
        t.install(TxId(3), TsVec::from_elems(&[Some(1), Some(0)]));
        let order = t.serial_order(&[TxId(1), TxId(2), TxId(3)]).unwrap();
        assert_eq!(order, vec![TxId(3), TxId(2), TxId(1)]);
    }

    #[test]
    fn serial_order_keeps_unordered_pairs_free() {
        let mut t = TimestampTable::new(2);
        t.install(TxId(1), TsVec::from_elems(&[Some(1), None]));
        t.install(TxId(2), TsVec::from_elems(&[Some(2), None]));
        t.install(TxId(3), TsVec::from_elems(&[Some(2), None])); // equal to T2
        let order = t.serial_order(&[TxId(3), TxId(1), TxId(2)]).unwrap();
        assert_eq!(order[0], TxId(1), "T1 precedes both");
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn display_renders_rows() {
        let mut t = TimestampTable::new(2);
        t.ensure_tx(TxId(1));
        t.set_wt(ItemId(0), TxId(1));
        let s = t.to_string();
        assert!(s.contains("TS(0) = <0,*>"));
        assert!(s.contains("TS(1) = <*,*>"));
        assert!(s.contains("WT = 1"));
    }
}
