//! The timestamp table of Fig. 2: one vector row per transaction, plus the
//! per-item `RT(x)`/`WT(x)` indices locating the most recent reader and
//! writer, plus the k-th-column counters.

use std::fmt;

use mdts_model::{ItemId, TxId};
use mdts_vector::{CmpResult, KthCounters, ScalarComparator, TsVec};

/// The MT(k) timestamp table (Fig. 2).
///
/// Rows are timestamp vectors indexed by transaction id; row 0 is the
/// virtual transaction `T₀` with `TS(0) = ⟨0, *, …⟩`, which "reads and
/// writes all data items before any other transaction" and is never
/// reclaimed. `RT(x)`/`WT(x)` start at 0 for every item accordingly
/// (Algorithm 1, lines 2–3).
#[derive(Clone, Debug)]
pub struct TimestampTable {
    k: usize,
    /// Vector per transaction id; `None` = never begun or reclaimed.
    vectors: Vec<Option<TsVec>>,
    /// `RT(x)` per item id.
    rt: Vec<TxId>,
    /// `WT(x)` per item id.
    wt: Vec<TxId>,
    /// Per-transaction count of `RT`/`WT` entries naming it, maintained by
    /// [`TimestampTable::set_rt`]/[`TimestampTable::set_wt`] — makes the
    /// reclamation check of Section III-D-6b O(1) instead of a scan over
    /// every item.
    refs: Vec<u32>,
    /// Per-slot flag: the row held a vector that was since reclaimed, so a
    /// fresh vector appearing here reuses the id — any memoized comparison
    /// involving it must be discarded.
    reclaimed: Vec<bool>,
    /// Bumped whenever a change could invalidate a previously *decided*
    /// comparison: an existing vector is overwritten (the III-D-4 in-place
    /// flush) or a reclaimed id is reused. Write-once defines never bump it
    /// — that is exactly what makes the order cache sound.
    mutations: u64,
    counters: KthCounters,
}

impl TimestampTable {
    /// Fresh table for vectors of dimension `k`.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        TimestampTable {
            k,
            vectors: vec![Some(TsVec::origin(k))],
            rt: Vec::new(),
            wt: Vec::new(),
            refs: Vec::new(),
            reclaimed: Vec::new(),
            mutations: 0,
            counters: KthCounters::new(),
        }
    }

    /// Replaces the default counters (DMT(k) installs site-tagged ones).
    pub fn with_counters(mut self, counters: KthCounters) -> Self {
        self.counters = counters;
        self
    }

    /// Vector dimension `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Mutable access to the k-th-column counters.
    pub fn counters_mut(&mut self) -> &mut KthCounters {
        &mut self.counters
    }

    /// The counters (for inspection).
    pub fn counters(&self) -> &KthCounters {
        &self.counters
    }

    /// Swaps the table's counters with `other` — DMT(k) swaps in the
    /// *scheduling site's* site-tagged counters for the duration of each
    /// operation, so k-th-column values carry that site's tag
    /// (Section V-B-1).
    pub fn swap_counters(&mut self, other: &mut KthCounters) {
        std::mem::swap(&mut self.counters, other);
    }

    /// Ensures a (fully undefined) vector exists for `tx`.
    pub fn ensure_tx(&mut self, tx: TxId) {
        let idx = tx.index();
        if idx >= self.vectors.len() {
            self.vectors.resize(idx + 1, None);
        }
        if self.vectors[idx].is_none() {
            self.note_fresh_row(idx);
            self.vectors[idx] = Some(TsVec::undefined(self.k));
        }
    }

    /// Installs an explicit initial vector for `tx` — used by the
    /// starvation-avoidance restart, which pre-sets the first element
    /// (Section III-D-4).
    pub fn install(&mut self, tx: TxId, vector: TsVec) {
        assert_eq!(vector.k(), self.k);
        let idx = tx.index();
        if idx >= self.vectors.len() {
            self.vectors.resize(idx + 1, None);
        }
        if self.vectors[idx].is_some() {
            // Overwriting a live vector (the III-D-4 in-place flush) can
            // flip a previously decided order.
            self.mutations += 1;
        } else {
            self.note_fresh_row(idx);
        }
        self.vectors[idx] = Some(vector);
    }

    /// The III-D-4 restart flush, storage-reusing form: resets `tx`'s
    /// existing row to fully undefined in place (pre-defining element 0
    /// with `first` when the starvation fix recorded a hint) instead of
    /// allocating a replacement vector. Falls back to
    /// [`install`](Self::install) when the transaction has no live row.
    /// Like any overwrite of a live vector, it advances the mutation epoch
    /// so memoized orders naming the old incarnation go stale.
    pub fn flush_in_place(&mut self, tx: TxId, first: Option<i64>) {
        let idx = tx.index();
        if let Some(Some(v)) = self.vectors.get_mut(idx) {
            match first {
                Some(f) => v.flush(f),
                None => v.clear(),
            }
            self.mutations += 1;
            return;
        }
        let mut v = TsVec::undefined(self.k);
        if let Some(f) = first {
            v.define(0, f);
        }
        self.install(tx, v);
    }

    /// Bookkeeping for a vector appearing in slot `idx`: if the slot held a
    /// since-reclaimed vector, the id is being reused and memoized
    /// comparisons naming it go stale.
    fn note_fresh_row(&mut self, idx: usize) {
        if self.reclaimed.get(idx).copied().unwrap_or(false) {
            self.reclaimed[idx] = false;
            self.mutations += 1;
        }
    }

    /// An epoch that advances whenever a previously *decided* comparison
    /// could have been invalidated — by an [`install`](Self::install) over a
    /// live row, by reuse of a reclaimed id, or by an explicit
    /// [`bump_mutation_epoch`](Self::bump_mutation_epoch). Under the
    /// write-once discipline nothing else can flip a decided order, so an
    /// order cache is valid exactly while this value holds still.
    pub fn mutation_epoch(&self) -> u64 {
        self.mutations
    }

    /// Conservatively advances the mutation epoch — callers with raw mutable
    /// table access (e.g. experiment drivers poking vectors directly) use
    /// this to force order-cache invalidation.
    pub fn bump_mutation_epoch(&mut self) {
        self.mutations += 1;
    }

    /// `TS(tx)`, if the transaction has a live vector.
    pub fn ts(&self, tx: TxId) -> Option<&TsVec> {
        self.vectors.get(tx.index()).and_then(|v| v.as_ref())
    }

    /// `TS(tx)`, panicking if absent (protocol invariant: every transaction
    /// referenced by `RT`/`WT` or being scheduled has a vector).
    pub fn ts_expect(&self, tx: TxId) -> &TsVec {
        self.ts(tx).unwrap_or_else(|| panic!("no live timestamp vector for {tx}"))
    }

    /// Mutable `TS(tx)`.
    pub fn ts_mut(&mut self, tx: TxId) -> &mut TsVec {
        self.vectors
            .get_mut(tx.index())
            .and_then(|v| v.as_mut())
            .unwrap_or_else(|| panic!("no live timestamp vector for {tx}"))
    }

    fn ensure_item(&mut self, item: ItemId) {
        let idx = item.index();
        if idx >= self.rt.len() {
            // Every new item starts with RT = WT = T₀ (Algorithm 1 line 3),
            // so T₀ gains two references per item.
            let added = idx + 1 - self.rt.len();
            self.rt.resize(idx + 1, TxId::VIRTUAL);
            self.wt.resize(idx + 1, TxId::VIRTUAL);
            self.bump_ref(TxId::VIRTUAL, 2 * added as i64);
        }
    }

    fn bump_ref(&mut self, tx: TxId, delta: i64) {
        let idx = tx.index();
        if idx >= self.refs.len() {
            self.refs.resize(idx + 1, 0);
        }
        let r = i64::from(self.refs[idx]) + delta;
        debug_assert!(r >= 0, "reference count for {tx} went negative");
        self.refs[idx] = r as u32;
    }

    /// `RT(x)` — index of the most recent reader (Algorithm 1 line 3
    /// default: `T₀`).
    pub fn rt(&self, item: ItemId) -> TxId {
        self.rt.get(item.index()).copied().unwrap_or(TxId::VIRTUAL)
    }

    /// `WT(x)` — index of the most recent writer.
    pub fn wt(&self, item: ItemId) -> TxId {
        self.wt.get(item.index()).copied().unwrap_or(TxId::VIRTUAL)
    }

    /// Sets `RT(x) := tx` (Algorithm 1 line 7).
    pub fn set_rt(&mut self, item: ItemId, tx: TxId) {
        self.ensure_item(item);
        let old = std::mem::replace(&mut self.rt[item.index()], tx);
        if old != tx {
            self.bump_ref(old, -1);
            self.bump_ref(tx, 1);
        }
    }

    /// Sets `WT(x) := tx` (Algorithm 1 line 12).
    pub fn set_wt(&mut self, item: ItemId, tx: TxId) {
        self.ensure_item(item);
        let old = std::mem::replace(&mut self.wt[item.index()], tx);
        if old != tx {
            self.bump_ref(old, -1);
            self.bump_ref(tx, 1);
        }
    }

    /// Definition 6 comparison of two transactions' vectors.
    pub fn compare(&self, a: TxId, b: TxId) -> CmpResult {
        ScalarComparator::compare(self.ts_expect(a), self.ts_expect(b))
    }

    /// Strict `TS(a) < TS(b)`.
    pub fn is_less(&self, a: TxId, b: TxId) -> bool {
        matches!(self.compare(a, b), CmpResult::Less { .. })
    }

    /// Whether `tx` is currently the most recent reader or writer of any
    /// item — if so its vector must not be reclaimed (Section III-D-6b).
    /// O(1) off the maintained reference count.
    pub fn is_referenced(&self, tx: TxId) -> bool {
        let counted = self.refs.get(tx.index()).copied().unwrap_or(0) > 0;
        debug_assert_eq!(
            counted,
            self.is_referenced_scan(tx),
            "reference count for {tx} disagrees with the RT/WT scan"
        );
        counted
    }

    /// The original O(#items) reference check, scanning every `RT`/`WT`
    /// entry. Kept as the oracle for the refcount (debug assertions and the
    /// equivalence property test).
    pub fn is_referenced_scan(&self, tx: TxId) -> bool {
        self.rt.iter().chain(self.wt.iter()).any(|&t| t == tx)
    }

    /// Reference count for `tx` (number of `RT`/`WT` entries naming it).
    pub fn ref_count(&self, tx: TxId) -> u32 {
        self.refs.get(tx.index()).copied().unwrap_or(0)
    }

    /// Storage reclamation (Section III-D-6b): drops the vector of a
    /// committed transaction if it is no longer any item's most recent
    /// read/write timestamp. Returns whether the row was reclaimed. `T₀` is
    /// never reclaimed.
    pub fn reclaim(&mut self, tx: TxId) -> bool {
        if tx.is_virtual() || self.is_referenced(tx) {
            return false;
        }
        let idx = tx.index();
        if let Some(slot) = self.vectors.get_mut(idx) {
            if slot.is_some() {
                *slot = None;
                if idx >= self.reclaimed.len() {
                    self.reclaimed.resize(idx + 1, false);
                }
                self.reclaimed[idx] = true;
                return true;
            }
        }
        false
    }

    /// Number of live vector rows (including `T₀`) — the table footprint
    /// the paper argues "normally fits in main memory" (III-D-6a).
    pub fn live_rows(&self) -> usize {
        self.vectors.iter().filter(|v| v.is_some()).count()
    }

    /// All live transactions, ascending.
    pub fn live_txns(&self) -> Vec<TxId> {
        self.vectors
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_ref().map(|_| TxId(i as u32)))
            .collect()
    }

    /// A serialization order for the given transactions: a topological sort
    /// of the strict vector order (Theorem 2's witness). Returns `None` if
    /// some needed vector is missing.
    ///
    /// One stable O(n log n · k) sort by a total-order key that linearly
    /// extends the strict vector order: each element maps to
    /// `(0, value)` when defined and `(1, 0)` when undefined, compared
    /// lexicographically. If `TS(a) < TS(b)` strictly at deciding index `m`,
    /// the two keys share the prefix before `m` (both-defined-equal there)
    /// and differ at `m` with `(0, a_m) < (0, b_m)` — so every strictly
    /// ordered pair sorts correctly, and unordered pairs land in key (or,
    /// for equal keys, input) order, which the partial order leaves free.
    pub fn serial_order(&self, txns: &[TxId]) -> Option<Vec<TxId>> {
        for &t in txns {
            self.ts(t)?;
        }
        let key_at = |t: TxId, m: usize| -> (u8, i64) {
            match self.ts_expect(t).get(m) {
                Some(v) => (0, v),
                None => (1, 0),
            }
        };
        let mut order: Vec<TxId> = txns.to_vec();
        order.sort_by(|&a, &b| {
            (0..self.k).map(|m| key_at(a, m)).cmp((0..self.k).map(|m| key_at(b, m)))
        });
        // The O(n²) pairwise verification the sort replaced; debug-only.
        debug_assert!(
            (0..order.len())
                .all(|a| { (a + 1..order.len()).all(|b| !self.is_less(order[b], order[a])) }),
            "sorted order contradicts the strict vector order"
        );
        Some(order)
    }
}

impl fmt::Display for TimestampTable {
    /// Renders the table in the paper's style: one `TS(i) = ⟨…⟩` row per
    /// live transaction, then the `RT`/`WT` columns per touched item.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "timestamp table (k = {}):", self.k)?;
        for (i, v) in self.vectors.iter().enumerate() {
            if let Some(ts) = v {
                writeln!(f, "  TS({i}) = {ts}")?;
            }
        }
        for idx in 0..self.rt.len() {
            writeln!(f, "  item {idx}: RT = {}, WT = {}", self.rt[idx].0, self.wt[idx].0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_matches_algorithm1() {
        let t = TimestampTable::new(2);
        assert_eq!(t.ts_expect(TxId::VIRTUAL).to_string(), "<0,*>");
        assert_eq!(t.rt(ItemId(5)), TxId::VIRTUAL);
        assert_eq!(t.wt(ItemId(5)), TxId::VIRTUAL);
        assert_eq!(t.counters().ucount(), 1);
        assert_eq!(t.counters().lcount(), 0);
    }

    #[test]
    fn ensure_tx_is_idempotent() {
        let mut t = TimestampTable::new(2);
        t.ensure_tx(TxId(3));
        t.ts_mut(TxId(3)).define(0, 7);
        t.ensure_tx(TxId(3));
        assert_eq!(t.ts_expect(TxId(3)).get(0), Some(7), "existing vector untouched");
    }

    #[test]
    fn flush_in_place_reuses_row_and_bumps_epoch() {
        // k = 70 forces the spilled representation, so storage reuse is
        // observable: the flushed row must still be the boxed form.
        let mut t = TimestampTable::new(70);
        t.ensure_tx(TxId(1));
        t.ts_mut(TxId(1)).define(0, 3);
        t.ts_mut(TxId(1)).define(7, 9);
        let before = t.mutation_epoch();
        t.flush_in_place(TxId(1), Some(5));
        assert!(t.mutation_epoch() > before, "live-row overwrite invalidates memoized orders");
        let v = t.ts_expect(TxId(1));
        assert!(v.is_spilled());
        assert_eq!(v.get(0), Some(5));
        assert_eq!(v.defined_count(), 1);
        // Plain flush (no hint): fully undefined again.
        t.flush_in_place(TxId(1), None);
        assert!(t.ts_expect(TxId(1)).is_fully_undefined());
        // No live row: falls back to install.
        t.flush_in_place(TxId(9), Some(2));
        assert_eq!(t.ts_expect(TxId(9)).get(0), Some(2));
    }

    #[test]
    fn reclaim_respects_references_and_t0() {
        let mut t = TimestampTable::new(2);
        t.ensure_tx(TxId(1));
        t.set_rt(ItemId(0), TxId(1));
        assert!(!t.reclaim(TxId(1)), "still RT(x)");
        t.set_rt(ItemId(0), TxId(2));
        assert!(t.reclaim(TxId(1)));
        assert!(!t.reclaim(TxId(1)), "already gone");
        assert!(!t.reclaim(TxId::VIRTUAL), "T0 is permanent");
        assert_eq!(t.live_rows(), 1);
    }

    #[test]
    fn serial_order_sorts_by_vector_order() {
        let mut t = TimestampTable::new(2);
        // Example 2's resulting vectors: T1=<1,2>, T2=<1,1>, T3=<1,0>.
        t.install(TxId(1), TsVec::from_elems(&[Some(1), Some(2)]));
        t.install(TxId(2), TsVec::from_elems(&[Some(1), Some(1)]));
        t.install(TxId(3), TsVec::from_elems(&[Some(1), Some(0)]));
        let order = t.serial_order(&[TxId(1), TxId(2), TxId(3)]).unwrap();
        assert_eq!(order, vec![TxId(3), TxId(2), TxId(1)]);
    }

    #[test]
    fn serial_order_keeps_unordered_pairs_free() {
        let mut t = TimestampTable::new(2);
        t.install(TxId(1), TsVec::from_elems(&[Some(1), None]));
        t.install(TxId(2), TsVec::from_elems(&[Some(2), None]));
        t.install(TxId(3), TsVec::from_elems(&[Some(2), None])); // equal to T2
        let order = t.serial_order(&[TxId(3), TxId(1), TxId(2)]).unwrap();
        assert_eq!(order[0], TxId(1), "T1 precedes both");
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn ref_counts_track_rt_wt_chains() {
        let mut t = TimestampTable::new(2);
        // Touching two new items references T₀ four times (RT+WT each).
        t.set_rt(ItemId(0), TxId(1));
        t.set_wt(ItemId(1), TxId(1));
        assert_eq!(t.ref_count(TxId::VIRTUAL), 2, "T0 keeps WT(0) and RT(1)");
        assert_eq!(t.ref_count(TxId(1)), 2);
        assert!(t.is_referenced(TxId(1)));
        // Re-assigning the same transaction is a no-op on the count.
        t.set_rt(ItemId(0), TxId(1));
        assert_eq!(t.ref_count(TxId(1)), 2);
        // Displacement moves the reference.
        t.set_rt(ItemId(0), TxId(2));
        assert_eq!(t.ref_count(TxId(1)), 1);
        assert_eq!(t.ref_count(TxId(2)), 1);
        t.set_wt(ItemId(1), TxId(2));
        assert_eq!(t.ref_count(TxId(1)), 0);
        assert!(!t.is_referenced(TxId(1)));
        // And agrees with the scan oracle throughout.
        for tx in [TxId::VIRTUAL, TxId(1), TxId(2), TxId(3)] {
            assert_eq!(t.is_referenced(tx), t.is_referenced_scan(tx));
        }
    }

    #[test]
    fn reclaim_uses_refcount_not_scan() {
        // The same end state as reclaim_respects_references_and_t0, but
        // verifying the refcount index directly drives the decision.
        let mut t = TimestampTable::new(2);
        t.ensure_tx(TxId(1));
        t.set_rt(ItemId(0), TxId(1));
        assert_eq!(t.ref_count(TxId(1)), 1);
        assert!(!t.reclaim(TxId(1)));
        t.set_rt(ItemId(0), TxId(2));
        assert_eq!(t.ref_count(TxId(1)), 0);
        assert!(t.reclaim(TxId(1)));
    }

    #[test]
    fn mutation_epoch_tracks_flushes_and_id_reuse() {
        let mut t = TimestampTable::new(2);
        t.ensure_tx(TxId(1));
        t.ensure_tx(TxId(2));
        assert_eq!(t.mutation_epoch(), 0, "fresh rows never bump the epoch");
        t.ts_mut(TxId(1)).define(0, 3);
        assert_eq!(t.mutation_epoch(), 0, "write-once defines never bump the epoch");
        // In-place III-D-4 flush: overwriting a live vector bumps.
        t.install(TxId(1), TsVec::undefined(2));
        assert_eq!(t.mutation_epoch(), 1);
        // Reclaim alone doesn't bump — nothing can compare against the row.
        assert!(t.reclaim(TxId(2)));
        assert_eq!(t.mutation_epoch(), 1);
        // Reusing the reclaimed id does, once, whichever path recreates it.
        t.ensure_tx(TxId(2));
        assert_eq!(t.mutation_epoch(), 2);
        t.ensure_tx(TxId(2));
        assert_eq!(t.mutation_epoch(), 2, "idempotent ensure doesn't re-bump");
        t.bump_mutation_epoch();
        assert_eq!(t.mutation_epoch(), 3);
    }

    #[test]
    fn display_renders_rows() {
        let mut t = TimestampTable::new(2);
        t.ensure_tx(TxId(1));
        t.set_wt(ItemId(0), TxId(1));
        let s = t.to_string();
        assert!(s.contains("TS(0) = <0,*>"));
        assert!(s.contains("TS(1) = <*,*>"));
        assert!(s.contains("WT = 1"));
    }
}
