//! Property tests for the protocol theorems:
//!
//! * **Theorem 2** — every log MT(k) accepts is DSR, and every dependency
//!   edge ends up strictly ordered in the timestamp vectors.
//! * **Theorem 3** — on logs with at most `q` operations per transaction,
//!   MT(2q−1) accepts exactly what any larger MT(k) accepts.
//! * **Theorem 5** — the shared-prefix composite accepts exactly the same
//!   logs as the naive composite, with the same surviving subprotocols.
//! * **Inclusivity** (Section IV) — TO(h⁺) ⊆ TO(k⁺) for h ≤ k.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use mdts_graph::{dependency_graph, is_dsr};
use mdts_model::{Log, MultiStepConfig, TwoStepConfig};

use crate::composite::{NaiveComposite, SharedPrefixComposite};
use crate::mtk::{MtOptions, MtScheduler};
use crate::recognize::{recognize, to_k, to_k_star};

fn arb_log() -> impl Strategy<Value = Log> {
    (2usize..7, 2usize..8, 0.2f64..0.8, any::<u64>()).prop_map(
        |(n_txns, n_items, p_write, seed)| {
            let mut rng = StdRng::seed_from_u64(seed);
            MultiStepConfig {
                n_txns,
                n_items,
                p_write,
                min_ops: 1,
                max_ops: 4,
                ..Default::default()
            }
            .generate(&mut rng)
        },
    )
}

fn arb_two_step_log() -> impl Strategy<Value = Log> {
    (2usize..7, 2usize..6, any::<u64>()).prop_map(|(n_txns, n_items, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        TwoStepConfig {
            n_txns,
            n_items,
            read_size: 1.min(n_items),
            write_size: 1,
            ..Default::default()
        }
        .generate(&mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Theorem 2 (soundness): accepted ⇒ DSR, and the final vectors
    /// strictly order every dependency edge — so a topological sort of the
    /// vectors is an equivalent serial order.
    #[test]
    fn theorem2_accepted_logs_are_serializable(log in arb_log(), k in 1usize..6) {
        let mut s = MtScheduler::new(MtOptions::new(k));
        if recognize(&mut s, &log).accepted {
            prop_assert!(is_dsr(&log), "accepted non-DSR log: {log}");
            let dep = dependency_graph(&log, false);
            for e in &dep.edges {
                prop_assert!(
                    s.table().is_less(e.from, e.to),
                    "dependency {} → {} not ordered in vectors ({log})", e.from, e.to
                );
            }
            let order = s.table().serial_order(&log.transactions());
            prop_assert!(order.is_some(), "vector order not sortable ({log})");
        }
    }

    /// The relaxed reader rule and the Thomas write rule keep soundness:
    /// the *applied* operations of an accepted log form a DSR log.
    #[test]
    fn refinements_preserve_soundness(log in arb_log(), k in 2usize..5) {
        let opts = MtOptions {
            relaxed_reader_rule: true,
            thomas_write_rule: true,
            ..MtOptions::new(k)
        };
        let mut s = MtScheduler::new(opts);
        let mut applied = Log::new();
        let mut ok = true;
        for op in log.ops() {
            match s.process(op) {
                crate::mtk::Decision::Accept { ignored } => {
                    // Keep only the non-ignored accesses.
                    let keep: Vec<_> = op
                        .items()
                        .iter()
                        .copied()
                        .filter(|i| !ignored.contains(i))
                        .collect();
                    if !keep.is_empty() {
                        applied.push(mdts_model::Operation::new(op.tx, op.kind, keep));
                    }
                }
                crate::mtk::Decision::Reject(_) => { ok = false; break; }
            }
        }
        if ok {
            prop_assert!(is_dsr(&applied), "applied projection not DSR: {applied}");
        }
    }

    /// Theorem 3: for q-step transactions, the vector dimension saturates
    /// at 2q − 1.
    #[test]
    fn theorem3_dimension_saturates(log in arb_log()) {
        let q = log.max_ops_per_txn();
        let k0 = 2 * q - 1;
        let base = to_k(&log, k0);
        for k in [k0 + 1, k0 + 2, 2 * q + 3] {
            prop_assert_eq!(to_k(&log, k), base, "k = {} differs from k0 = {}", k, k0);
        }
    }

    /// Theorem 5: naive and shared-prefix composites agree — on acceptance,
    /// on the first rejected position, and on which subprotocols survive.
    #[test]
    fn theorem5_composites_agree(log in arb_log(), k in 1usize..6) {
        let mut naive = NaiveComposite::new(k);
        let mut shared = SharedPrefixComposite::new(k);
        let rn = recognize(&mut naive, &log);
        let rs = recognize(&mut shared, &log);
        prop_assert_eq!(&rn, &rs, "recognition differs on {} (k = {})", &log, k);
        prop_assert_eq!(naive.alive(), shared.alive(), "surviving subprotocols differ on {}", &log);
    }

    /// Section IV inclusivity: TO(h⁺) ⊆ TO(k⁺) for h ≤ k, and each MT(h)
    /// (composite options) is covered by MT(k⁺) for h ≤ k.
    #[test]
    fn composite_inclusivity(log in arb_log(), k in 2usize..6) {
        if to_k_star(&log, k - 1) {
            prop_assert!(to_k_star(&log, k), "TO({}+) ⊄ TO({}+) on {}", k - 1, k, &log);
        }
        for h in 1..=k {
            let mut sub = MtScheduler::new(MtOptions::for_composite(h));
            if recognize(&mut sub, &log).accepted {
                prop_assert!(to_k_star(&log, k), "TO({}) ⊄ TO({}+) on {}", h, k, &log);
                break;
            }
        }
    }

    /// TO(k) ⊆ DSR for the two-step model as well (Definition 3's framing).
    #[test]
    fn to_k_inside_dsr_two_step(log in arb_two_step_log(), k in 1usize..5) {
        if to_k(&log, k) {
            prop_assert!(is_dsr(&log));
        }
    }

    /// Acceptance is deterministic: re-running the same log yields the
    /// same verdict and identical final vectors.
    #[test]
    fn recognition_is_deterministic(log in arb_log(), k in 1usize..5) {
        let mut a = MtScheduler::new(MtOptions::new(k));
        let mut b = MtScheduler::new(MtOptions::new(k));
        let ra = recognize(&mut a, &log);
        let rb = recognize(&mut b, &log);
        prop_assert_eq!(ra, rb);
        for tx in log.transactions() {
            prop_assert_eq!(a.table().ts(tx), b.table().ts(tx));
        }
    }
}

/// The paper's Fig. 4 claim that TO(k−1) ⊄ TO(k): column k−1 of MT(k−1)
/// holds distinct values where MT(k) may hold equal ones. Witness: a log
/// accepted by MT(1) but rejected by MT(2).
#[test]
fn to1_not_subset_of_to2_witness() {
    // Found by search (see exp11): serial-ish two-step traffic where MT(1)'s
    // forced total order happens to match, while MT(2) leaves two
    // transactions "equal" and then cannot tolerate a same-column conflict.
    let mut found = None;
    let mut rng = StdRng::seed_from_u64(42);
    for _ in 0..20_000 {
        let log = MultiStepConfig {
            n_txns: 3,
            n_items: 3,
            min_ops: 1,
            max_ops: 2,
            p_write: 0.6,
            ..Default::default()
        }
        .generate(&mut rng);
        if to_k(&log, 1) && !to_k(&log, 2) {
            found = Some(log);
            break;
        }
    }
    let log = found.expect("a TO(1) \\ TO(2) witness exists (paper, Fig. 4)");
    assert!(to_k(&log, 1) && !to_k(&log, 2));
    // The composite covers both, of course.
    assert!(to_k_star(&log, 2));
}
