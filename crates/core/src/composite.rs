//! Algorithm 2 — the composite protocol MT(k⁺) recognizing
//! `TO(k⁺) = TO(1) ∪ TO(2) ∪ … ∪ TO(k)` (Section IV).
//!
//! Two implementations:
//!
//! * [`NaiveComposite`] — the specification: k independent MT(h)
//!   subprotocols, each with its own table. An operation is accepted when
//!   at least one still-running subprotocol accepts it; a subprotocol that
//!   rejects an operation is *stopped* (the log has left its class).
//! * [`SharedPrefixComposite`] — Algorithm 2 proper: Theorem 5 shows the
//!   prefix of each vector is identical across subprotocols, so a single
//!   shared `PREFIX` table (columns 1…k−1) plus one `LASTCOL` column per
//!   subprotocol suffices. One walk over the columns updates every
//!   subprotocol at once, giving O(k) per operation instead of O(k²).
//!
//! The two must accept exactly the same logs; the property tests in
//! `protocol_props` check this — a mechanized validation of Theorem 5.
//!
//! Both run their subprotocols with the reader rule (lines 9–10) disabled,
//! the paper's simplifying assumption: the rule makes subprotocols update
//! `RT(x)` differently depending on *how* a read was accepted, which would
//! break the shared-index invariant.

use mdts_model::{ItemId, OpKind, Operation, TxId};
use mdts_vector::KthCounters;

use crate::mtk::{Decision, MtOptions, MtScheduler, Reject};

/// The specification composite: k independent subprotocols.
#[derive(Clone, Debug)]
pub struct NaiveComposite {
    /// `subs[h-1]` is MT(h); `None` once stopped.
    subs: Vec<Option<MtScheduler>>,
}

impl NaiveComposite {
    /// MT(k⁺) from the subprotocols MT(1)…MT(k).
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1);
        NaiveComposite {
            subs: (1..=k).map(|h| Some(MtScheduler::new(MtOptions::for_composite(h)))).collect(),
        }
    }

    /// Which subprotocols are still running (`true` at index `h-1` = MT(h)
    /// alive).
    pub fn alive(&self) -> Vec<bool> {
        self.subs.iter().map(|s| s.is_some()).collect()
    }

    /// Access to a still-running subprotocol (for the Theorem 5 audits).
    pub fn sub(&self, h: usize) -> Option<&MtScheduler> {
        self.subs.get(h - 1).and_then(|s| s.as_ref())
    }

    /// Processes one operation: every running subprotocol sees it; those
    /// that reject are stopped; the composite accepts if any survive having
    /// accepted.
    pub fn process(&mut self, op: &Operation) -> Decision {
        let mut last_reject: Option<Reject> = None;
        let mut any_accept = false;
        for slot in &mut self.subs {
            if let Some(sub) = slot {
                match sub.process(op) {
                    Decision::Accept { .. } => any_accept = true,
                    Decision::Reject(r) => {
                        last_reject = Some(r);
                        *slot = None;
                    }
                }
            }
        }
        if any_accept {
            Decision::accept()
        } else {
            Decision::Reject(last_reject.unwrap_or(Reject {
                tx: op.tx,
                against: TxId::VIRTUAL,
                item: op.items()[0],
                column: 0,
            }))
        }
    }
}

/// One transaction's row in the shared tables.
#[derive(Clone, Debug)]
struct Row {
    /// Shared PREFIX columns 1…k−1 (0-based indices 0…k−2).
    prefix: Vec<Option<i64>>,
    /// `lastcol[h-1]` = this transaction's element in LASTCOL(h), the last
    /// column of subprotocol MT(h).
    lastcol: Vec<Option<i64>>,
}

/// Algorithm 2: the shared-prefix composite.
#[derive(Clone, Debug)]
pub struct SharedPrefixComposite {
    k: usize,
    rows: Vec<Option<Row>>,
    /// `alive[h-1]` = subprotocol MT(h) still running.
    alive: Vec<bool>,
    /// Separate counters per subprotocol's LASTCOL (Fig. 10).
    counters: Vec<KthCounters>,
    rt: Vec<TxId>,
    wt: Vec<TxId>,
}

impl SharedPrefixComposite {
    /// MT(k⁺) with shared PREFIX/LASTCOL tables.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1);
        let mut this = SharedPrefixComposite {
            k,
            rows: Vec::new(),
            alive: vec![true; k],
            counters: vec![KthCounters::new(); k],
            rt: Vec::new(),
            wt: Vec::new(),
        };
        // T₀: first column 0, everything else undefined. For MT(1) the
        // first column *is* its LASTCOL; for MT(h ≥ 2) it is PREFIX(1).
        let mut row = this.blank_row();
        if k >= 2 {
            row.prefix[0] = Some(0);
        }
        row.lastcol[0] = Some(0);
        this.rows.push(Some(row));
        this
    }

    fn blank_row(&self) -> Row {
        Row { prefix: vec![None; self.k - 1], lastcol: vec![None; self.k] }
    }

    fn ensure_tx(&mut self, tx: TxId) {
        let idx = tx.index();
        if idx >= self.rows.len() {
            self.rows.resize_with(idx + 1, || None);
        }
        if self.rows[idx].is_none() {
            self.rows[idx] = Some(self.blank_row());
        }
    }

    fn row(&self, tx: TxId) -> &Row {
        self.rows[tx.index()].as_ref().expect("row ensured before use")
    }

    fn row_mut(&mut self, tx: TxId) -> &mut Row {
        self.rows[tx.index()].as_mut().expect("row ensured before use")
    }

    /// Which subprotocols are still running.
    pub fn alive(&self) -> Vec<bool> {
        self.alive.clone()
    }

    /// This transaction's PREFIX row (for the Theorem 5 audits).
    pub fn prefix_of(&self, tx: TxId) -> Option<&[Option<i64>]> {
        self.rows.get(tx.index()).and_then(|r| r.as_ref()).map(|r| r.prefix.as_slice())
    }

    /// This transaction's element in LASTCOL(h).
    pub fn lastcol_of(&self, tx: TxId, h: usize) -> Option<i64> {
        self.rows.get(tx.index()).and_then(|r| r.as_ref()).and_then(|r| r.lastcol[h - 1])
    }

    fn smallest_alive(&self) -> Option<usize> {
        self.alive.iter().position(|&a| a).map(|i| i + 1)
    }

    /// Strict order `TS_h(a) < TS_h(b)` under the smallest running
    /// subprotocol MT(h). Used only to pick the larger of `RT(x)`/`WT(x)`,
    /// whose order is conflict-forced and therefore identical in every
    /// running subprotocol.
    fn effective_less(&self, a: TxId, b: TxId) -> bool {
        let Some(h) = self.smallest_alive() else {
            return false;
        };
        let (ra, rb) = (self.row(a), self.row(b));
        for c in 0..h - 1 {
            match (ra.prefix[c], rb.prefix[c]) {
                (Some(x), Some(y)) if x == y => continue,
                (Some(x), Some(y)) => return x < y,
                _ => return false, // unordered here ⇒ not strictly less
            }
        }
        match (ra.lastcol[h - 1], rb.lastcol[h - 1]) {
            (Some(x), Some(y)) => x < y,
            _ => false,
        }
    }

    fn rt(&self, item: ItemId) -> TxId {
        self.rt.get(item.index()).copied().unwrap_or(TxId::VIRTUAL)
    }

    fn wt(&self, item: ItemId) -> TxId {
        self.wt.get(item.index()).copied().unwrap_or(TxId::VIRTUAL)
    }

    fn ensure_item(&mut self, item: ItemId) {
        let idx = item.index();
        if idx >= self.rt.len() {
            self.rt.resize(idx + 1, TxId::VIRTUAL);
            self.wt.resize(idx + 1, TxId::VIRTUAL);
        }
    }

    fn pick(&mut self, item: ItemId) -> TxId {
        let (rt, wt) = (self.rt(item), self.wt(item));
        if rt == wt {
            return rt;
        }
        self.ensure_tx(rt);
        self.ensure_tx(wt);
        if self.effective_less(rt, wt) {
            wt
        } else {
            rt
        }
    }

    fn any_alive_from(&self, h: usize) -> bool {
        // Subprotocols MT(h+1)…MT(k) — indices h..k-1.
        self.alive[h..].iter().any(|&a| a)
    }

    /// Algorithm 2's column walk: encode the dependency `T_j → T_i` under
    /// every still-running subprotocol, stopping those it contradicts.
    /// Returns whether at least one subprotocol remains running.
    fn encode(&mut self, j: TxId, i: TxId) -> bool {
        if j == i {
            return self.alive.iter().any(|&a| a);
        }
        self.ensure_tx(j);
        self.ensure_tx(i);
        let k = self.k;
        let mut h = 1usize;
        loop {
            // Step 2: LASTCOL(h) — subprotocol MT(h).
            if self.alive[h - 1] {
                let vj = self.row(j).lastcol[h - 1];
                let vi = self.row(i).lastcol[h - 1];
                match (vj, vi) {
                    (Some(a), Some(b)) => {
                        debug_assert_ne!(a, b, "LASTCOL values are distinct by construction");
                        if a > b {
                            self.alive[h - 1] = false; // conflict: stop MT(h)
                        }
                    }
                    (None, None) => {
                        let (a, b) = self.counters[h - 1].fresh_pair();
                        self.row_mut(j).lastcol[h - 1] = Some(a);
                        self.row_mut(i).lastcol[h - 1] = Some(b);
                    }
                    (Some(_), None) => {
                        let v = self.counters[h - 1].fresh_upper();
                        self.row_mut(i).lastcol[h - 1] = Some(v);
                    }
                    (None, Some(_)) => {
                        let v = self.counters[h - 1].fresh_lower();
                        self.row_mut(j).lastcol[h - 1] = Some(v);
                    }
                }
            }
            // Step 3: PREFIX(h) — subprotocols MT(h+1)…MT(k).
            if h == k || !self.any_alive_from(h) {
                break;
            }
            let pj = self.row(j).prefix[h - 1];
            let pi = self.row(i).prefix[h - 1];
            match (pj, pi) {
                (Some(a), Some(b)) if a == b => {
                    h += 1;
                    continue;
                }
                (Some(a), Some(b)) if a < b => break, // already encoded
                (Some(_), Some(_)) => {
                    // Conflict in the shared prefix: the subprotocols that
                    // use this column are out of their class.
                    for alive in &mut self.alive[h..] {
                        *alive = false;
                    }
                    break;
                }
                (None, None) => {
                    self.row_mut(j).prefix[h - 1] = Some(1);
                    self.row_mut(i).prefix[h - 1] = Some(2);
                    break;
                }
                (Some(a), None) => {
                    self.row_mut(i).prefix[h - 1] = Some(a + 1);
                    break;
                }
                (None, Some(b)) => {
                    self.row_mut(j).prefix[h - 1] = Some(b - 1);
                    break;
                }
            }
        }
        self.alive.iter().any(|&a| a)
    }

    /// Processes one operation (reader rule off, as in the paper's
    /// Theorem 5 setting).
    pub fn process(&mut self, op: &Operation) -> Decision {
        self.ensure_tx(op.tx);
        for &item in op.items() {
            self.ensure_item(item);
            let j = self.pick(item);
            if !self.encode(j, op.tx) {
                return Decision::Reject(Reject { tx: op.tx, against: j, item, column: 0 });
            }
            match op.kind {
                OpKind::Read => self.rt[item.index()] = op.tx,
                OpKind::Write => self.wt[item.index()] = op.tx,
            }
        }
        Decision::accept()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recognize::{recognize, to_k};
    use mdts_model::Log;

    fn naive_accepts(log: &Log, k: usize) -> bool {
        recognize(&mut NaiveComposite::new(k), log).accepted
    }

    fn shared_accepts(log: &Log, k: usize) -> bool {
        recognize(&mut SharedPrefixComposite::new(k), log).accepted
    }

    #[test]
    fn composite_accepts_union_member() {
        // Example 1's full log is TO(2) \ TO(1); MT(2+) accepts, MT(1+) not.
        let log = Log::parse("W1[x] W1[y] R3[x] R2[y] R2[y'] W3[y]").unwrap();
        assert!(naive_accepts(&log, 2));
        assert!(shared_accepts(&log, 2));
        assert!(!naive_accepts(&log, 1));
        assert!(!shared_accepts(&log, 1));
    }

    #[test]
    fn stopping_one_sub_keeps_the_other() {
        let log = Log::parse("W1[x] W1[y] R3[x] R2[y] R2[y'] W3[y]").unwrap();
        let mut c = NaiveComposite::new(2);
        assert!(recognize(&mut c, &log).accepted);
        assert_eq!(c.alive(), vec![false, true], "MT(1) stopped at W3[y], MT(2) survives");
        let mut s = SharedPrefixComposite::new(2);
        assert!(recognize(&mut s, &log).accepted);
        assert_eq!(s.alive(), vec![false, true]);
    }

    #[test]
    fn inclusivity_to1_subset_of_composite() {
        // Any TO(1) log must be accepted by every MT(k+).
        let log = Log::parse("R1[x] W1[x] R2[x] W2[x] R3[x] W3[x]").unwrap();
        assert!(to_k(&log, 1));
        for k in 1..=4 {
            assert!(naive_accepts(&log, k), "k = {k}");
            assert!(shared_accepts(&log, k), "k = {k}");
        }
    }

    #[test]
    fn reject_when_all_stopped() {
        // A non-DSR log defeats every subprotocol.
        let log = Log::parse("R1[x] R2[y] W2[x] W1[y]").unwrap();
        for k in 1..=3 {
            assert!(!naive_accepts(&log, k), "k = {k}");
            assert!(!shared_accepts(&log, k), "k = {k}");
        }
    }

    #[test]
    fn theorem5_prefixes_agree_with_naive_subs() {
        let log = Log::parse("R1[x] R2[y] R3[z] W1[y] W1[z]").unwrap();
        let mut naive = NaiveComposite::new(3);
        let mut shared = SharedPrefixComposite::new(3);
        assert!(recognize(&mut naive, &log).accepted);
        assert!(recognize(&mut shared, &log).accepted);
        assert_eq!(naive.alive(), shared.alive());
        // For each running subprotocol MT(h), the shared PREFIX columns
        // 1..h-1 must equal the naive subprotocol's vector prefix.
        for h in 1..=3usize {
            let Some(sub) = naive.sub(h) else { continue };
            for tx in [TxId(1), TxId(2), TxId(3)] {
                let naive_ts = sub.table().ts_expect(tx);
                let shared_prefix = shared.prefix_of(tx).unwrap();
                for (c, &cell) in shared_prefix.iter().enumerate().take(h - 1) {
                    assert_eq!(naive_ts.get(c), cell, "h = {h}, tx = {tx}, column {c}");
                }
                assert_eq!(
                    naive_ts.get(h - 1).is_some(),
                    shared.lastcol_of(tx, h).is_some(),
                    "LASTCOL definedness, h = {h}, tx = {tx}"
                );
            }
        }
    }
}
