//! Log recognition: feed a fixed interleaving to an online scheduler and
//! report whether every operation is accepted.
//!
//! The paper measures a scheduler's *degree of concurrency* by the set of
//! logs it accepts without rearranging (Section III-C); these helpers drive
//! the class-membership experiments of Fig. 4.

use mdts_model::{Log, Operation};

use crate::composite::{NaiveComposite, SharedPrefixComposite};
use crate::mtk::{Decision, MtOptions, MtScheduler};

/// Anything that can schedule operations online.
pub trait LogScheduler {
    /// Processes one operation, returning the verdict.
    fn process_op(&mut self, op: &Operation) -> Decision;
}

impl LogScheduler for MtScheduler {
    fn process_op(&mut self, op: &Operation) -> Decision {
        self.process(op)
    }
}

impl LogScheduler for NaiveComposite {
    fn process_op(&mut self, op: &Operation) -> Decision {
        self.process(op)
    }
}

impl LogScheduler for SharedPrefixComposite {
    fn process_op(&mut self, op: &Operation) -> Decision {
        self.process(op)
    }
}

/// Outcome of recognizing one log.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Recognition {
    /// Whether every operation was accepted.
    pub accepted: bool,
    /// Position of the first rejected operation, if any.
    pub rejected_at: Option<usize>,
}

/// Runs the log through the scheduler; stops at the first rejection.
pub fn recognize<S: LogScheduler>(scheduler: &mut S, log: &Log) -> Recognition {
    for (pos, op) in log.ops().iter().enumerate() {
        if !scheduler.process_op(op).is_accept() {
            return Recognition { accepted: false, rejected_at: Some(pos) };
        }
    }
    Recognition { accepted: true, rejected_at: None }
}

/// Membership in TO(k): acceptance by MT(k) with Algorithm 1 defaults.
pub fn to_k(log: &Log, k: usize) -> bool {
    recognize(&mut MtScheduler::new(MtOptions::new(k)), log).accepted
}

/// Membership in TO(k⁺) = TO(1) ∪ … ∪ TO(k): acceptance by the composite
/// MT(k⁺) (subprotocols run with the paper's simplifying assumption —
/// reader rule off).
pub fn to_k_star(log: &Log, k: usize) -> bool {
    recognize(&mut NaiveComposite::new(k), log).accepted
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recognize_reports_first_rejection() {
        let log = Log::parse("W1[x] W1[y] R3[x] R2[y] R2[y'] W3[y]").unwrap();
        let mut mt1 = MtScheduler::with_k(1);
        let r = recognize(&mut mt1, &log);
        assert!(!r.accepted);
        assert_eq!(r.rejected_at, Some(5));
        assert!(to_k(&log, 2));
        assert!(!to_k(&log, 1));
    }

    #[test]
    fn to_k_star_covers_union() {
        let log = Log::parse("W1[x] W1[y] R3[x] R2[y] R2[y'] W3[y]").unwrap();
        assert!(to_k_star(&log, 2), "TO(2) member is a TO(2+) member");
        assert!(!to_k_star(&log, 1));
    }
}
