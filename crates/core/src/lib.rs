//! The paper's primary contribution: the multidimensional timestamp
//! protocols **MT(k)** (Algorithm 1) and the composite **MT(k\*)**
//! (Algorithm 2) of Leu & Bhargava, *Multidimensional Timestamp Protocols
//! for Concurrency Control* (ICDE 1986).
//!
//! # The idea
//!
//! Every transaction `T_i` carries a k-dimensional timestamp vector
//! `TS(i)` whose elements start *undefined*. Each accepted operation may
//! discover a new dependency `T_j → T_i` (against the latest reader or
//! writer of the item); the dependency is *encoded* by defining one element
//! in each vector so that `TS(j) < TS(i)` under the lexicographic order of
//! Definition 6. Earlier-assigned elements are more significant, so
//! previously encoded dependencies can never be contradicted — an incoming
//! operation whose dependency would require `TS(j) < TS(i)` while the
//! vectors already say `TS(j) > TS(i)` is rejected. The class of logs
//! accepted, **TO(k)**, grows with the freedom the undefined elements
//! leave: vectors stay *equal* (mutually unordered) until a real conflict
//! forces an order — unlike single-valued timestamps, which fix a total
//! order at start time.
//!
//! # Entry points
//!
//! * [`MtScheduler`] — MT(k) as an online scheduler with the paper's
//!   optional refinements ([`MtOptions`]): the Thomas write rule
//!   (III-D-6c), the starvation-avoidance flush (III-D-4), the relaxed
//!   reader rule (noted after Theorem 3), and the hot-item right-end
//!   encoding (III-D-5).
//! * [`NaiveComposite`] and [`SharedPrefixComposite`] — MT(k\*) both as the
//!   specification (k independent subprotocols) and as Algorithm 2's
//!   shared PREFIX/LASTCOL implementation; Theorem 5 says they coincide,
//!   and the test-suite checks it.
//! * [`recognize`], [`to_k`], [`to_k_star`] — log-recognition helpers used
//!   by the class-hierarchy experiments (Fig. 4).
//! * [`MvMtScheduler`] — the multiversion extension of III-D-6d: version
//!   chains per item under the vector order; reads never abort.
//! * [`SharedMtScheduler`] — MT(k) behind `&self`: item-sharded `RT`/`WT`,
//!   a chunked per-slot-locked [`RowTable`], a write-once [`OrderCache`]
//!   for decided comparisons, lock-free k-th-column counters and O(1)
//!   refcount reclamation, for multi-threaded engines.
//!
//! [`OrderCache`]: mdts_vector::OrderCache

pub mod composite;
pub mod mtk;
pub mod mvmt;
pub mod recognize;
pub mod rowtable;
pub mod shared;
pub mod sync;
pub mod table;

pub use composite::{NaiveComposite, SharedPrefixComposite};
pub use mtk::{Decision, HotEncoding, MtOptions, MtScheduler, Reject, SetEvent};
pub use mvmt::MvMtScheduler;
pub use recognize::{recognize, to_k, to_k_star, LogScheduler, Recognition};
pub use rowtable::{RowSlot, RowTable};
pub use shared::{BatchedCompareStats, SharedMtScheduler, SnapshotRead, BATCH_SIZE_BUCKETS};
pub use table::TimestampTable;

#[cfg(test)]
mod paper_examples;
#[cfg(test)]
mod protocol_props;
