//! `cfg(loom)`-switched synchronization primitives.
//!
//! Production builds re-export `std`; model-checking builds
//! (`RUSTFLAGS="--cfg loom"`) substitute the loom shim's instrumented
//! types so `tests/loom_models.rs` can explore every interleaving of the
//! row table's chunk publication, slot reuse, and hint hand-off
//! protocols. The re-exports cover exactly what `rowtable.rs` and the
//! guard types in `shared.rs` need (they are `pub` because `RowSlot`
//! exposes `&AtomicU32`/`&AtomicBool` and lock guards in its API);
//! `PoisonError` stays on `std` in both configurations — the shim's lock
//! results use the real type.

#[cfg(loom)]
pub use loom::sync::atomic::{AtomicBool, AtomicI64, AtomicPtr, AtomicU32, AtomicUsize, Ordering};
#[cfg(loom)]
pub use loom::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};
#[cfg(not(loom))]
pub use std::sync::atomic::{AtomicBool, AtomicI64, AtomicPtr, AtomicU32, AtomicUsize, Ordering};
#[cfg(not(loom))]
pub use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};
