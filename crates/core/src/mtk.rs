//! Algorithm 1 — the protocol MT(k).
//!
//! The scheduler keeps the timestamp table of Fig. 2 and, for each arriving
//! operation by `T_i` on item `x`:
//!
//! 1. picks `j` — the *larger* of `RT(x)` and `WT(x)` under the vector
//!    order (lines 5–6; the two are always comparable, see the invariant
//!    note on [`MtScheduler::pick`]);
//! 2. calls `Set(j, i)` to check or encode the dependency `T_j → T_i`
//!    (procedure `Set`, lines 15–20);
//! 3. on success updates `RT(x)`/`WT(x)` and accepts; a read that cannot be
//!    ordered after the latest *reader* may still proceed if it is ordered
//!    after the latest *writer* (lines 9–10); otherwise the transaction
//!    must abort.
//!
//! Optional refinements from the paper are behind [`MtOptions`]:
//! the Thomas write rule (III-D-6c), the starvation-avoidance flush
//! (III-D-4), the relaxed reader rule (remark after Theorem 3), and the
//! hot-item right-end encoding (III-D-5).

use std::collections::HashMap;

use mdts_model::{ItemId, OpKind, Operation, TxId};
use mdts_trace::event::{
    scalar_cost, tree_cost, AccessOutcome, EncodedChanges, RejectRule, SetEdgeOutcome,
};
use mdts_trace::{TraceBuffer, TraceEvent, TraceSink};
use mdts_vector::{CmpResult, OrderCache, OrderCacheStats, TsVec};

use crate::table::TimestampTable;

/// Hot-item encoding configuration (Section III-D-5).
///
/// When a dependency is created by an access to an item whose observed
/// access count is at least `threshold`, the dependency is encoded *near
/// the right end* of the vectors: the already-defined prefix of the earlier
/// transaction's vector is copied into the later one's, and the order is
/// encoded at the first column where both are then undefined. Vectors that
/// shared the old prefix remain unordered with respect to the later
/// transaction, preserving concurrency.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HotEncoding {
    /// Minimum access count for an item to be treated as hot.
    pub threshold: u64,
}

/// Configuration for [`MtScheduler`].
#[derive(Clone, Copy, Debug)]
pub struct MtOptions {
    /// Vector dimension `k ≥ 1`. Theorem 3: `k = 2q − 1` suffices for
    /// transactions of at most `q` operations.
    pub k: usize,
    /// Enable lines 9–10 (a read that cannot be ordered after the latest
    /// reader proceeds if already ordered after the latest writer). On by
    /// default — this is Algorithm 1 as published. The composite protocol
    /// runs with it off (the paper's simplifying assumption for
    /// Theorem 5).
    pub reader_rule: bool,
    /// Replace the line-9 condition `TS(WT(x)) < TS(i)` by `Set(WT(x), i)`
    /// — the higher-concurrency variant noted after Theorem 3 (it may
    /// *encode* the order rather than require it pre-existing).
    pub relaxed_reader_rule: bool,
    /// Thomas write rule (III-D-6c): a write that is ordered after all
    /// readers but before the latest writer is *ignored* instead of
    /// aborting the transaction.
    pub thomas_write_rule: bool,
    /// Starvation avoidance (III-D-4): on abort, remember the blocker's
    /// first timestamp element so the restart begins with
    /// `TS(i) = ⟨TS(j,1) + 1, *, …⟩` and cannot hit the same rejection.
    pub starvation_flush: bool,
    /// Hot-item right-end encoding (III-D-5).
    pub hot_encoding: Option<HotEncoding>,
    /// Memoize *decided* comparisons (`TS(a) < TS(b)` / `>`) in a write-once
    /// [`OrderCache`](mdts_vector::OrderCache). Sound because decided orders
    /// are immutable under the write-once element discipline; the cache is
    /// flushed whenever the table reports a mutation that could break that
    /// (the III-D-4 in-place flush, reuse of a reclaimed id, raw table
    /// access). On by default.
    pub order_cache: bool,
    /// Attach an internal journal [`TraceBuffer`] so [`MtScheduler::events`]
    /// can reconstruct the `Set` journal (used by the paper-table
    /// harnesses; off by default to keep bulk recognition allocation-free).
    /// Independent of this flag, an external sink can be attached with
    /// [`MtScheduler::attach_trace`].
    pub record_events: bool,
}

impl MtOptions {
    /// Algorithm 1 defaults for dimension `k`.
    pub fn new(k: usize) -> Self {
        MtOptions {
            k,
            reader_rule: true,
            relaxed_reader_rule: false,
            thomas_write_rule: false,
            starvation_flush: false,
            hot_encoding: None,
            order_cache: true,
            record_events: false,
        }
    }

    /// The configuration the composite protocol uses for its subprotocols:
    /// lines 9–10 disabled.
    pub fn for_composite(k: usize) -> Self {
        MtOptions { reader_rule: false, ..MtOptions::new(k) }
    }
}

/// Why an operation was rejected.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Reject {
    /// The transaction whose operation was rejected (it must abort).
    pub tx: TxId,
    /// The transaction whose timestamp vector blocked it (`TS(against) >
    /// TS(tx)` at the deciding column).
    pub against: TxId,
    /// The item whose access created the impossible dependency.
    pub item: ItemId,
    /// The vector column whose already-encoded order decided the refusal.
    pub column: usize,
}

/// Scheduler verdict for one operation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Decision {
    /// Operation accepted. `ignored` lists items whose writes were dropped
    /// by the Thomas write rule (empty in the common case).
    Accept {
        /// Items whose write was ignored rather than applied.
        ignored: Vec<ItemId>,
    },
    /// Operation rejected; the transaction must abort (and may restart).
    Reject(Reject),
}

impl Decision {
    /// Plain full acceptance.
    pub fn accept() -> Decision {
        Decision::Accept { ignored: Vec::new() }
    }

    /// Whether the operation may proceed.
    pub fn is_accept(&self) -> bool {
        matches!(self, Decision::Accept { .. })
    }
}

/// Journal record of one `Set(j, i)` outcome (for the Table I–III
/// reproductions and the unit tests).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SetEvent {
    /// The dependency `from → to` was newly encoded; `changes` lists the
    /// `(transaction, column, value)` element definitions performed.
    Encoded {
        /// Earlier transaction.
        from: TxId,
        /// Later transaction.
        to: TxId,
        /// Element definitions `(tx, column, value)`.
        changes: EncodedChanges,
    },
    /// The vectors already said `from < to`; nothing to do.
    AlreadyOrdered {
        /// Earlier transaction.
        from: TxId,
        /// Later transaction.
        to: TxId,
    },
    /// The vectors say `from > to`; the dependency is impossible.
    Refused {
        /// Would-be earlier transaction.
        from: TxId,
        /// Would-be later transaction.
        to: TxId,
        /// Column that decided the order.
        at: usize,
    },
}

enum SetResult {
    /// Ordered (possibly after encoding).
    Ok,
    /// `TS(j) > TS(i)` — the dependency cannot be encoded.
    Refused { at: usize },
}

/// Which table slot a footprint entry refers to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Slot {
    Rt,
    Wt,
}

/// The MT(k) scheduler.
#[derive(Clone, Debug)]
pub struct MtScheduler {
    opts: MtOptions,
    table: TimestampTable,
    /// Per-item access counts for hot-item detection.
    access_counts: Vec<u64>,
    /// Starvation-restart hints: aborted tx → first element for its restart.
    restart_hints: HashMap<TxId, i64>,
    /// Per-transaction undo information for the `RT`/`WT` indices: the
    /// `(item, slot, previous holder)` triples this transaction displaced.
    /// An abort rolls these back so a restart re-derives its timestamps
    /// from the pre-abort state — the semantics the Fig. 5 starvation
    /// scenario assumes.
    footprint: HashMap<TxId, Vec<(ItemId, Slot, TxId)>>,
    /// Finished (committed or abort-anchored) transactions whose vectors
    /// are still pinned by `RT`/`WT` references; reclaimed the moment they
    /// are displaced (III-D-6b).
    finished: std::collections::HashSet<TxId>,
    /// Items whose `RT` chain shields invisible readers: a lines-9–10
    /// acceptance did not update `RT`, so the accepted reader's only
    /// protection against later writers is the decided order
    /// `reader < RT(x)`. Rolling `RT(x)` back on abort can erase it — a
    /// later writer could then slip *between* the invisible reader's read
    /// and its own write-validation without ever being compared against
    /// either (a lost update). For these items an aborting `RT` holder is
    /// left in place as an inert anchor instead. The mark is sticky:
    /// displacing the holder transfers the protection to the new holder,
    /// but a rollback of *that* holder's abort would silently restore the
    /// old anchor, so rollback stays disabled for the item's `RT` slot for
    /// good.
    shielded: std::collections::HashSet<ItemId>,
    /// Write-once order cache: memoized *decided* comparisons, consulted by
    /// `Set`, `pick` and the reader rule. A clone starts cold (see
    /// [`OrderCache`]'s `Clone`), which is always valid.
    cache: OrderCache,
    /// The table mutation epoch the cache was last synchronized against;
    /// a table mutation that could flip a decided order advances the
    /// table's epoch, and the next cache consult flushes.
    cache_synced_epoch: u64,
    /// Decision-trace sink (disabled by default; see `mdts-trace`).
    /// Cloning the scheduler shares the sink's buffer.
    trace: TraceSink,
}

impl MtScheduler {
    /// New scheduler with the given options.
    pub fn new(opts: MtOptions) -> Self {
        assert!(opts.k >= 1);
        let trace = if opts.record_events {
            TraceSink::to(&TraceBuffer::journal())
        } else {
            TraceSink::disabled()
        };
        MtScheduler {
            table: TimestampTable::new(opts.k),
            opts,
            access_counts: Vec::new(),
            restart_hints: HashMap::new(),
            footprint: HashMap::new(),
            finished: std::collections::HashSet::new(),
            shielded: std::collections::HashSet::new(),
            cache: OrderCache::new(),
            cache_synced_epoch: 0,
            trace,
        }
    }

    /// MT(k) with default options.
    pub fn with_k(k: usize) -> Self {
        MtScheduler::new(MtOptions::new(k))
    }

    /// The options in force.
    pub fn options(&self) -> &MtOptions {
        &self.opts
    }

    /// The timestamp table (read-only).
    pub fn table(&self) -> &TimestampTable {
        &self.table
    }

    /// Mutable access to the timestamp table — for harnesses and the
    /// distributed protocol, which seed tables with pre-existing vectors
    /// or site-tagged counters. Mutations must respect the write-once
    /// element discipline or the protocol's guarantees are void.
    ///
    /// Conservatively advances the table's mutation epoch, flushing the
    /// order cache on the next consult — raw access could define elements
    /// behind the cache's back in ways the write-once argument doesn't
    /// cover (e.g. DMT(k) write-backs of remote vectors).
    pub fn table_mut(&mut self) -> &mut TimestampTable {
        self.table.bump_mutation_epoch();
        &mut self.table
    }

    /// Hit/miss/insert/invalidation counters of the write-once order cache.
    pub fn order_cache_stats(&self) -> OrderCacheStats {
        self.cache.stats()
    }

    /// Definition 6 comparison of `TS(a)` and `TS(b)`, served from the
    /// write-once order cache when it already holds a decided result.
    /// Returns the result and whether it was a cache hit. Fresh *decided*
    /// results are inserted on the way out.
    fn compare_cached(&mut self, a: TxId, b: TxId) -> (CmpResult, bool) {
        if !self.opts.order_cache {
            return (self.table.compare(a, b), false);
        }
        let table_epoch = self.table.mutation_epoch();
        if table_epoch != self.cache_synced_epoch {
            self.cache_synced_epoch = table_epoch;
            self.cache.invalidate_all();
        }
        let epoch = self.cache.epoch();
        if let Some(hit) = self.cache.get(a.0, b.0) {
            debug_assert_eq!(
                hit,
                self.table.compare(a, b),
                "order cache diverged from a fresh compare of {a} and {b}"
            );
            return (hit, true);
        }
        let cmp = self.table.compare(a, b);
        self.cache.insert(epoch, a.0, b.0, cmp);
        (cmp, false)
    }

    /// Notes a just-encoded order `TS(j) < TS(i)` (decided at column `at`)
    /// in the cache, so the next consult is a hit.
    fn cache_note_less(&mut self, j: TxId, i: TxId, at: usize) {
        if !self.opts.order_cache {
            return;
        }
        debug_assert_eq!(
            self.table.compare(j, i),
            CmpResult::Less { at },
            "encoded order for {j} < {i} does not match the vectors"
        );
        let epoch = self.cache.epoch();
        self.cache.insert(epoch, j.0, i.0, CmpResult::Less { at });
    }

    /// Installs an explicit vector for `tx`, replacing any existing row —
    /// used to seed scenarios (e.g. the paper's Table II bystander `T₄`)
    /// and by DMT(k)'s remote-vector cache.
    pub fn install_vector(&mut self, tx: TxId, vector: TsVec) {
        self.table.install(tx, vector);
    }

    /// Routes the scheduler's decision trace to `sink` (replacing any
    /// previous sink, including the internal `record_events` journal).
    pub fn attach_trace(&mut self, sink: TraceSink) {
        self.trace = sink;
    }

    /// The trace sink in force.
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// The `Set` journal, reconstructed from the attached trace buffer
    /// (empty unless `record_events` or an [`MtScheduler::attach_trace`]d
    /// buffer is present). Compatibility shim: the trace layer is the one
    /// event stream; this projects its `SetEdge` records back into the
    /// historical [`SetEvent`] shape.
    pub fn events(&self) -> Vec<SetEvent> {
        let Some(buffer) = self.trace.buffer() else {
            return Vec::new();
        };
        let trace = buffer.snapshot();
        trace
            .events()
            .filter_map(|e| match e {
                TraceEvent::SetEdge { from, to, outcome } => Some(match outcome {
                    SetEdgeOutcome::Encoded { changes } => {
                        SetEvent::Encoded { from: *from, to: *to, changes: changes.clone() }
                    }
                    SetEdgeOutcome::AlreadyOrdered => {
                        SetEvent::AlreadyOrdered { from: *from, to: *to }
                    }
                    SetEdgeOutcome::Refused { at } => {
                        SetEvent::Refused { from: *from, to: *to, at: *at }
                    }
                }),
                _ => None,
            })
            .collect()
    }

    /// Registers a transaction (idempotent). Operations register their
    /// transaction implicitly; this exists for symmetry with the engine.
    pub fn begin(&mut self, tx: TxId) {
        self.table.ensure_tx(tx);
    }

    /// Registers a restart of `aborted`: if the starvation fix recorded a
    /// hint for it, the new incarnation starts with
    /// `TS = ⟨TS(blocker,1)+1, *, …⟩` (Section III-D-4). `new_tx` may equal
    /// `aborted` (the paper's in-place flush) or be a fresh id (the
    /// engine's restart style).
    pub fn begin_restarted(&mut self, new_tx: TxId, aborted: TxId) {
        let hint = self.restart_hints.get(&aborted).copied();
        self.trace.emit(|| TraceEvent::Restart { tx: new_tx, aborted, hint });
        // The III-D-4 flush reuses the aborted incarnation's vector storage
        // in place (spilled rows keep their boxes) instead of reallocating.
        match self.restart_hints.remove(&aborted) {
            Some(first) => self.table.flush_in_place(new_tx, Some(first)),
            None => {
                if new_tx == aborted {
                    self.table.flush_in_place(new_tx, None);
                } else {
                    self.table.ensure_tx(new_tx);
                }
            }
        }
    }

    /// Notes a commit and attempts storage reclamation (III-D-6b). Returns
    /// whether the vector row could be dropped already.
    pub fn commit(&mut self, tx: TxId) -> bool {
        self.trace.emit(|| TraceEvent::Commit { tx });
        self.restart_hints.remove(&tx);
        self.footprint.remove(&tx);
        if self.table.reclaim(tx) {
            return true;
        }
        // Still the most recent reader/writer of some item: remember it so
        // the row is reclaimed as soon as it is displaced.
        self.finished.insert(tx);
        false
    }

    /// Reclaims `prev` if it finished earlier and is no longer referenced.
    fn reclaim_if_superseded(&mut self, prev: TxId) {
        if self.finished.contains(&prev) && self.table.reclaim(prev) {
            self.finished.remove(&prev);
        }
    }

    /// Notes an abort: rolls the transaction's `RT`/`WT` footprint back to
    /// the previous holders, then drops its vector if nothing references it
    /// anymore.
    ///
    /// Two cases keep the slot pointing at the aborted transaction instead,
    /// its vector staying behind as an inert anchor for the ordering
    /// constraints other transactions already encoded against it
    /// (conservative but safe — extra constraints never violate
    /// serializability):
    ///
    /// * the previous holder's vector has since been reclaimed, or
    /// * the slot is a *shielded* `RT` — an invisible lines-9–10 reader
    ///   depends on the decided order `reader < RT(x)`, and rolling the
    ///   slot back past its anchor would let a later writer slip between
    ///   that reader's read and its write-validation unchecked (a lost
    ///   update). See [`MtScheduler::read`].
    pub fn abort(&mut self, tx: TxId) {
        self.trace.emit(|| TraceEvent::Abort { tx });
        if let Some(entries) = self.footprint.remove(&tx) {
            for (item, slot, prev) in entries.into_iter().rev() {
                let current = match slot {
                    Slot::Rt => self.table.rt(item),
                    Slot::Wt => self.table.wt(item),
                };
                if slot == Slot::Rt && self.shielded.contains(&item) {
                    continue;
                }
                if current == tx && self.table.ts(prev).is_some() {
                    match slot {
                        Slot::Rt => self.table.set_rt(item, prev),
                        Slot::Wt => self.table.set_wt(item, prev),
                    }
                }
            }
        }
        if !self.table.reclaim(tx) {
            // Left behind as an anchor somewhere: reclaim on displacement.
            self.finished.insert(tx);
        }
    }

    fn set_rt_tracked(&mut self, item: ItemId, tx: TxId) {
        let prev = self.table.rt(item);
        if prev != tx {
            // Note the shield stays even though the new holder is ordered
            // after the old one (protections transfer): if the new holder
            // aborts, its rollback would restore the old anchor with no
            // record that invisible readers still hide behind it.
            self.footprint.entry(tx).or_default().push((item, Slot::Rt, prev));
            self.table.set_rt(item, tx);
            self.reclaim_if_superseded(prev);
        }
    }

    fn set_wt_tracked(&mut self, item: ItemId, tx: TxId) {
        let prev = self.table.wt(item);
        if prev != tx {
            self.footprint.entry(tx).or_default().push((item, Slot::Wt, prev));
            self.table.set_wt(item, tx);
            self.reclaim_if_superseded(prev);
        }
    }

    /// Public form of procedure `Set(j, i)`: try to establish (or verify)
    /// `TS(j) < TS(i)`, encoding a new dependency if the order is open.
    /// Returns `false` iff the vectors already say `TS(j) > TS(i)`.
    ///
    /// This is the building block the hierarchical protocol MT(k₁,k₂) and
    /// the decentralized DMT(k) reuse for their own tables.
    pub fn order(&mut self, j: TxId, i: TxId) -> bool {
        matches!(self.set_less(j, i, false), SetResult::Ok)
    }

    fn bump_access(&mut self, item: ItemId) -> bool {
        let idx = item.index();
        if idx >= self.access_counts.len() {
            self.access_counts.resize(idx + 1, 0);
        }
        self.access_counts[idx] += 1;
        match self.opts.hot_encoding {
            Some(h) => self.access_counts[idx] >= h.threshold,
            None => false,
        }
    }

    /// Lines 5–6: the larger of `RT(x)` and `WT(x)`.
    ///
    /// Invariant: the two are always strictly ordered (or identical)
    /// because every accepted access to `x` was ordered after the then
    /// larger of the two — so "not less" means "greater or same".
    fn pick(&mut self, item: ItemId) -> TxId {
        let rt = self.table.rt(item);
        let wt = self.table.wt(item);
        if rt == wt {
            return rt;
        }
        // RT/WT always point at live vectors (reclamation refuses while
        // referenced), but a defensive ensure keeps the invariant local.
        self.table.ensure_tx(rt);
        self.table.ensure_tx(wt);
        if matches!(self.compare_cached(rt, wt).0, CmpResult::Less { .. }) {
            wt
        } else {
            rt
        }
    }

    fn record(&mut self, ev: SetEvent) {
        self.trace.emit(|| {
            let (from, to, outcome) = match ev {
                SetEvent::Encoded { from, to, changes } => {
                    (from, to, SetEdgeOutcome::Encoded { changes })
                }
                SetEvent::AlreadyOrdered { from, to } => (from, to, SetEdgeOutcome::AlreadyOrdered),
                SetEvent::Refused { from, to, at } => (from, to, SetEdgeOutcome::Refused { at }),
            };
            TraceEvent::SetEdge { from, to, outcome }
        });
    }

    /// Procedure `Set(j, i)`: ensure `TS(j) < TS(i)`, encoding a new
    /// dependency if the order is still open.
    fn set_less(&mut self, j: TxId, i: TxId, hot: bool) -> SetResult {
        if j == i {
            return SetResult::Ok; // line 15
        }
        self.table.ensure_tx(j);
        self.table.ensure_tx(i);
        let k = self.opts.k;
        let (cmp, cached) = self.compare_cached(j, i);
        self.trace.emit(|| TraceEvent::Compare {
            a: j,
            b: i,
            result: cmp,
            // A hit costs one memo-table probe instead of a column walk.
            scalar_ops: if cached { 1 } else { scalar_cost(cmp, k) },
            tree_steps: tree_cost(k),
            cached,
        });
        match cmp {
            CmpResult::Less { .. } => {
                self.record(SetEvent::AlreadyOrdered { from: j, to: i });
                SetResult::Ok
            }
            CmpResult::Greater { at } => {
                self.record(SetEvent::Refused { from: j, to: i, at });
                SetResult::Refused { at }
            }
            CmpResult::Identical => {
                // Unreachable between distinct transactions: the k-th
                // column always holds globally distinct counter values.
                debug_assert!(false, "identical fully-defined vectors for {j} and {i}");
                SetResult::Refused { at: k - 1 }
            }
            CmpResult::EqualUndefined { at } => {
                let changes = if at == k - 1 {
                    let (a, b) = self.table.counters_mut().fresh_pair();
                    self.table.ts_mut(j).define(at, a);
                    self.table.ts_mut(i).define(at, b);
                    EncodedChanges::pair((j, at, a), (i, at, b))
                } else {
                    self.table.ts_mut(j).define(at, 1);
                    self.table.ts_mut(i).define(at, 2);
                    EncodedChanges::pair((j, at, 1), (i, at, 2))
                };
                self.record(SetEvent::Encoded { from: j, to: i, changes });
                self.cache_note_less(j, i, at);
                SetResult::Ok
            }
            CmpResult::RightUndefined { at } => {
                // TS(i, at) undefined; TS(j, at) defined.
                if hot {
                    if let Some(changes) = self.encode_hot(j, i, at) {
                        // The right-end encode decides at the first column
                        // it defined in *both* vectors — the last change.
                        let p = changes.last().expect("hot encode changes something").1;
                        self.record(SetEvent::Encoded { from: j, to: i, changes: changes.into() });
                        self.cache_note_less(j, i, p);
                        return SetResult::Ok;
                    }
                }
                let bound = self.table.ts_expect(j).get(at).expect("defined by case");
                let value = if at == k - 1 {
                    // The bound keeps the postcondition TS(j,k) < TS(i,k)
                    // even when a DMT(k) site's clock lags (Section V-B-1).
                    self.table.counters_mut().fresh_upper_above(bound)
                } else {
                    bound + 1
                };
                self.table.ts_mut(i).define(at, value);
                self.record(SetEvent::Encoded {
                    from: j,
                    to: i,
                    changes: EncodedChanges::one((i, at, value)),
                });
                self.cache_note_less(j, i, at);
                SetResult::Ok
            }
            CmpResult::LeftUndefined { at } => {
                // TS(j, at) undefined; TS(i, at) defined.
                let bound = self.table.ts_expect(i).get(at).expect("defined by case");
                let value = if at == k - 1 {
                    self.table.counters_mut().fresh_lower_below(bound)
                } else {
                    bound - 1
                };
                self.table.ts_mut(j).define(at, value);
                self.record(SetEvent::Encoded {
                    from: j,
                    to: i,
                    changes: EncodedChanges::one((j, at, value)),
                });
                self.cache_note_less(j, i, at);
                SetResult::Ok
            }
        }
    }

    /// Hot-item right-end encoding (III-D-5): copy `TS(j)`'s defined
    /// suffix-of-prefix into `TS(i)` from column `at` on, then encode the
    /// order at the first column where both are undefined. Returns the
    /// performed changes, or `None` when `TS(j)` is fully defined (no room
    /// — fall back to the normal rule).
    fn encode_hot(&mut self, j: TxId, i: TxId, at: usize) -> Option<Vec<(TxId, usize, i64)>> {
        let k = self.opts.k;
        // Protocol vectors are prefix-shaped: defined columns form a prefix.
        let donor_len = self.table.ts_expect(j).defined_count();
        debug_assert!(donor_len > at);
        if donor_len >= k {
            return None; // copying everything would duplicate the k-th column
        }
        let mut changes = Vec::with_capacity(donor_len - at + 2);
        for col in at..donor_len {
            let v = self.table.ts_expect(j).get(col).expect("within donor prefix");
            self.table.ts_mut(i).define(col, v);
            changes.push((i, col, v));
        }
        let p = donor_len;
        if p == k - 1 {
            let (a, b) = self.table.counters_mut().fresh_pair();
            self.table.ts_mut(j).define(p, a);
            self.table.ts_mut(i).define(p, b);
            changes.push((j, p, a));
            changes.push((i, p, b));
        } else {
            self.table.ts_mut(j).define(p, 1);
            self.table.ts_mut(i).define(p, 2);
            changes.push((j, p, 1));
            changes.push((i, p, 2));
        }
        Some(changes)
    }

    fn note_reject(&mut self, tx: TxId, against: TxId) {
        if self.opts.starvation_flush {
            // Blocker's first element is defined whenever Set refused (the
            // deciding column has both elements defined; column 0 is at or
            // before it and hence defined-equal or the decider itself).
            if let Some(first) = self.table.ts_expect(against).get(0) {
                self.restart_hints.insert(tx, first + 1);
            }
        }
    }

    /// Schedules a read of `item` by `tx` (the `read` arm of `Scheduler`).
    pub fn read(&mut self, tx: TxId, item: ItemId) -> Decision {
        self.table.ensure_tx(tx);
        let hot = self.bump_access(item);
        let rt = self.table.rt(item);
        let wt = self.table.wt(item);
        let j = self.pick(item);
        match self.set_less(j, tx, hot) {
            SetResult::Ok => {
                self.trace.emit(|| TraceEvent::Access {
                    tx,
                    item,
                    kind: OpKind::Read,
                    rt,
                    wt,
                    outcome: AccessOutcome::Granted,
                });
                self.set_rt_tracked(item, tx); // line 7
                Decision::accept()
            }
            SetResult::Refused { at } => {
                // Lines 9–10: proceed without becoming the most recent
                // reader if ordered after the latest writer.
                let reader_rule = self.opts.reader_rule && j == rt;
                if reader_rule {
                    let after_writer = if self.opts.relaxed_reader_rule {
                        matches!(self.set_less(wt, tx, false), SetResult::Ok)
                    } else {
                        wt == tx || matches!(self.compare_cached(wt, tx).0, CmpResult::Less { .. })
                    };
                    if after_writer {
                        // The read proceeds invisibly: `RT(x)` is not
                        // updated, so this reader's only protection is the
                        // decided order `tx < RT(x)`. Mark the anchor so an
                        // abort of the holder cannot roll it away.
                        self.shielded.insert(item);
                        self.trace.emit(|| TraceEvent::Access {
                            tx,
                            item,
                            kind: OpKind::Read,
                            rt,
                            wt,
                            outcome: AccessOutcome::GrantedInvisible,
                        });
                        return Decision::accept();
                    }
                }
                self.note_reject(tx, j);
                self.trace.emit(|| TraceEvent::Access {
                    tx,
                    item,
                    kind: OpKind::Read,
                    rt,
                    wt,
                    outcome: AccessOutcome::Rejected {
                        against: j,
                        column: at,
                        rule: if reader_rule {
                            RejectRule::ReaderRule
                        } else {
                            RejectRule::VectorOrder
                        },
                    },
                });
                Decision::Reject(Reject { tx, against: j, item, column: at })
            }
        }
    }

    /// Schedules a write of `item` by `tx` (the `write` arm of `Scheduler`).
    pub fn write(&mut self, tx: TxId, item: ItemId) -> Decision {
        self.table.ensure_tx(tx);
        let hot = self.bump_access(item);
        let rt = self.table.rt(item);
        let wt = self.table.wt(item);
        let j = self.pick(item);
        match self.set_less(j, tx, hot) {
            SetResult::Ok => {
                self.trace.emit(|| TraceEvent::Access {
                    tx,
                    item,
                    kind: OpKind::Write,
                    rt,
                    wt,
                    outcome: AccessOutcome::Granted,
                });
                self.set_wt_tracked(item, tx); // line 12
                Decision::accept()
            }
            SetResult::Refused { at } => {
                // Thomas write rule (III-D-6c): if the blocked writer sits
                // between all readers and the newer writer —
                // TS(RT(x)) < TS(tx) < TS(WT(x)) — ignore the write.
                let thomas = self.opts.thomas_write_rule && j == wt;
                if thomas && matches!(self.set_less(rt, tx, false), SetResult::Ok) {
                    self.trace.emit(|| TraceEvent::Access {
                        tx,
                        item,
                        kind: OpKind::Write,
                        rt,
                        wt,
                        outcome: AccessOutcome::GrantedIgnored,
                    });
                    return Decision::Accept { ignored: vec![item] };
                }
                self.note_reject(tx, j);
                self.trace.emit(|| TraceEvent::Access {
                    tx,
                    item,
                    kind: OpKind::Write,
                    rt,
                    wt,
                    outcome: AccessOutcome::Rejected {
                        against: j,
                        column: at,
                        rule: if thomas { RejectRule::ThomasRule } else { RejectRule::VectorOrder },
                    },
                });
                Decision::Reject(Reject { tx, against: j, item, column: at })
            }
        }
    }

    /// Schedules a whole (possibly multi-item) operation. Items are
    /// processed in ascending order; the first rejection rejects the
    /// operation (element definitions made for earlier items remain — they
    /// are valid constraints regardless, and the issuing transaction aborts
    /// anyway).
    pub fn process(&mut self, op: &Operation) -> Decision {
        let mut ignored = Vec::new();
        for &item in op.items() {
            let d = match op.kind {
                OpKind::Read => self.read(op.tx, item),
                OpKind::Write => self.write(op.tx, item),
            };
            match d {
                Decision::Accept { ignored: ig } => ignored.extend(ig),
                Decision::Reject(r) => return Decision::Reject(r),
            }
        }
        Decision::Accept { ignored }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdts_model::Log;

    fn run(sched: &mut MtScheduler, log: &Log) -> Option<usize> {
        for (pos, op) in log.ops().iter().enumerate() {
            if !sched.process(op).is_accept() {
                return Some(pos);
            }
        }
        None
    }

    #[test]
    fn first_op_defines_first_element() {
        let mut s = MtScheduler::with_k(2);
        assert!(s.read(TxId(1), ItemId(0)).is_accept());
        assert_eq!(s.table().ts_expect(TxId(1)).to_string(), "<1,*>");
        assert_eq!(s.table().rt(ItemId(0)), TxId(1));
    }

    #[test]
    fn conflicting_write_after_later_writer_rejected() {
        // W1[x] W2[x] then W1[x] again: T1 < T2 already encoded, so T1's
        // second write (needing T2 → T1) is refused.
        let mut s = MtScheduler::with_k(2);
        assert!(s.write(TxId(1), ItemId(0)).is_accept());
        assert!(s.write(TxId(2), ItemId(0)).is_accept());
        let d = s.write(TxId(1), ItemId(0));
        assert_eq!(
            d,
            Decision::Reject(Reject { tx: TxId(1), against: TxId(2), item: ItemId(0), column: 0 })
        );
    }

    #[test]
    fn reader_rule_lets_late_reader_through() {
        // W1[x], R2[x], R3[x], then R2[x] again: RT(x) = T3 > T2, but T2 is
        // ordered after the writer T1, so lines 9–10 accept the re-read
        // without updating RT.
        let mut s = MtScheduler::with_k(3);
        assert!(s.write(TxId(1), ItemId(0)).is_accept());
        assert!(s.read(TxId(2), ItemId(0)).is_accept());
        assert!(s.read(TxId(3), ItemId(0)).is_accept());
        assert!(s.read(TxId(2), ItemId(0)).is_accept(), "line 9 applies");
        assert_eq!(s.table().rt(ItemId(0)), TxId(3), "RT unchanged by line 10");

        // Without the reader rule the same re-read aborts.
        let mut s2 = MtScheduler::new(MtOptions { reader_rule: false, ..MtOptions::new(3) });
        assert!(s2.write(TxId(1), ItemId(0)).is_accept());
        assert!(s2.read(TxId(2), ItemId(0)).is_accept());
        assert!(s2.read(TxId(3), ItemId(0)).is_accept());
        assert!(!s2.read(TxId(2), ItemId(0)).is_accept());
    }

    #[test]
    fn example1_vectors_match_paper() {
        // Section I-A: after W1[x] W1[y] R3[x] R2[y] the vectors are
        // T1 = <1,*>, T2 = <2,*>, T3 = <2,*> — T2 and T3 share a value.
        let mut s = MtScheduler::with_k(2);
        let log = Log::parse("W1[x] W1[y] R3[x] R2[y]").unwrap();
        assert_eq!(run(&mut s, &log), None);
        assert_eq!(s.table().ts_expect(TxId(1)).to_string(), "<1,*>");
        assert_eq!(s.table().ts_expect(TxId(2)).to_string(), "<2,*>");
        assert_eq!(s.table().ts_expect(TxId(3)).to_string(), "<2,*>");

        // Continue with R2[y'] W3[y]: the 2nd dimension encodes T2 → T3.
        assert!(s.read(TxId(2), ItemId(2)).is_accept()); // y'
        assert!(s.write(TxId(3), ItemId(1)).is_accept()); // y
        assert_eq!(s.table().ts_expect(TxId(2)).to_string(), "<2,1>");
        assert_eq!(s.table().ts_expect(TxId(3)).to_string(), "<2,2>");
        let order = s.table().serial_order(&[TxId(1), TxId(2), TxId(3)]).unwrap();
        assert_eq!(order, vec![TxId(1), TxId(2), TxId(3)], "serializability order T1 T2 T3");
    }

    #[test]
    fn mt1_rejects_what_mt2_accepts() {
        // The same Example 1 log needs dimension 2: MT(1) must abort T3 at
        // W3[y] (T2 and T3 got totally ordered T3 < T2 up front).
        let log = Log::parse("W1[x] W1[y] R3[x] R2[y] R2[y'] W3[y]").unwrap();
        let mut k1 = MtScheduler::with_k(1);
        assert_eq!(run(&mut k1, &log), Some(5), "MT(1) rejects at W3[y]");
        let mut k2 = MtScheduler::with_k(2);
        assert_eq!(run(&mut k2, &log), None, "MT(2) accepts");
    }

    #[test]
    fn thomas_write_rule_ignores_obsolete_write() {
        // W1[x] W2[x] W1[x]: T1's late write is older than T2's — with the
        // rule on, it is ignored; WT stays T2.
        let opts = MtOptions { thomas_write_rule: true, ..MtOptions::new(2) };
        let mut s = MtScheduler::new(opts);
        assert!(s.write(TxId(1), ItemId(0)).is_accept());
        assert!(s.write(TxId(2), ItemId(0)).is_accept());
        let d = s.write(TxId(1), ItemId(0));
        assert_eq!(d, Decision::Accept { ignored: vec![ItemId(0)] });
        assert_eq!(s.table().wt(ItemId(0)), TxId(2));
    }

    #[test]
    fn thomas_rule_does_not_mask_reader_conflicts() {
        // The rule only applies when the *writer* blocks (j = WT). If the
        // latest reader is ordered after the incoming write, ignoring the
        // write would lose an update that the reader should have seen, so
        // the transaction must abort: W2[x] R1[z] W3[z] R3[x] then W1[x].
        let opts = MtOptions { thomas_write_rule: true, ..MtOptions::new(3) };
        let mut s = MtScheduler::new(opts);
        assert!(s.write(TxId(2), ItemId(0)).is_accept()); // W2[x]
        assert!(s.read(TxId(1), ItemId(2)).is_accept()); // R1[z]
        assert!(s.write(TxId(3), ItemId(2)).is_accept()); // W3[z]: T1 < T3
        assert!(s.read(TxId(3), ItemId(0)).is_accept()); // R3[x]: RT(x)=T3 > WT(x)=T2
        let d = s.write(TxId(1), ItemId(0));
        assert!(
            matches!(d, Decision::Reject(Reject { against: TxId(3), .. })),
            "reader T3 blocks: {d:?}"
        );
    }

    #[test]
    fn starvation_hint_recorded_and_used() {
        // Fig. 5: W1[x] W2[x] R3[y] W3[x] — T3 rejected; with the fix its
        // restart is pre-ordered after T2 and succeeds.
        let opts = MtOptions { starvation_flush: true, ..MtOptions::new(2) };
        let mut s = MtScheduler::new(opts);
        assert!(s.write(TxId(1), ItemId(0)).is_accept());
        assert!(s.write(TxId(2), ItemId(0)).is_accept());
        assert!(s.read(TxId(3), ItemId(1)).is_accept());
        assert!(!s.write(TxId(3), ItemId(0)).is_accept());
        // Abort, then restart in place (the paper's flush).
        s.abort(TxId(3));
        s.begin_restarted(TxId(3), TxId(3));
        assert_eq!(s.table().ts_expect(TxId(3)).to_string(), "<3,*>");
        assert!(s.read(TxId(3), ItemId(1)).is_accept());
        assert!(s.write(TxId(3), ItemId(0)).is_accept(), "restart proceeds to the end");
    }

    #[test]
    fn without_fix_restart_starves_again() {
        let mut s = MtScheduler::with_k(2);
        assert!(s.write(TxId(1), ItemId(0)).is_accept());
        assert!(s.write(TxId(2), ItemId(0)).is_accept());
        assert!(s.read(TxId(3), ItemId(1)).is_accept());
        assert!(!s.write(TxId(3), ItemId(0)).is_accept());
        // Abort rolls RT(y) back to T0, so the restarted T3 re-derives the
        // very same TS(3) = <1,*> and hits the very same rejection.
        s.abort(TxId(3));
        assert_eq!(s.table().rt(ItemId(1)), TxId(0), "footprint rolled back");
        s.begin_restarted(TxId(3), TxId(3)); // plain flush, no hint
        assert!(s.read(TxId(3), ItemId(1)).is_accept());
        assert_eq!(s.table().ts_expect(TxId(3)).to_string(), "<1,*>");
        assert!(!s.write(TxId(3), ItemId(0)).is_accept(), "same situation repeats");
    }

    #[test]
    fn hot_encoding_copies_prefix() {
        // Section III-D-5's illustration: T1 = <1,3,*,*>, T2 fresh; hot
        // encoding yields T1 = <1,3,1,*>, T2 = <1,3,2,*>.
        let opts =
            MtOptions { hot_encoding: Some(HotEncoding { threshold: 0 }), ..MtOptions::new(4) };
        let mut s = MtScheduler::new(opts);
        s.table.install(TxId(1), TsVec::from_elems(&[Some(1), Some(3), None, None]));
        s.table.set_wt(ItemId(0), TxId(1));
        assert!(s.write(TxId(2), ItemId(0)).is_accept());
        assert_eq!(s.table().ts_expect(TxId(1)).to_string(), "<1,3,1,*>");
        assert_eq!(s.table().ts_expect(TxId(2)).to_string(), "<1,3,2,*>");
    }

    #[test]
    fn commit_reclaims_unreferenced_rows() {
        let mut s = MtScheduler::with_k(2);
        assert!(s.write(TxId(1), ItemId(0)).is_accept());
        assert!(!s.commit(TxId(1)), "still WT(x): row pinned");
        assert_eq!(s.table().live_rows(), 2);
        // Being displaced as WT(x) reclaims the committed row eagerly.
        assert!(s.write(TxId(2), ItemId(0)).is_accept());
        assert_eq!(s.table().live_rows(), 2, "only T0 and T2 remain");
        assert!(s.table().ts(TxId(1)).is_none(), "T1 reclaimed on displacement");
    }

    #[test]
    fn events_journal_records_encodings() {
        let mut s = MtScheduler::new(MtOptions { record_events: true, ..MtOptions::new(2) });
        assert!(s.write(TxId(1), ItemId(0)).is_accept());
        assert_eq!(
            s.events(),
            &[SetEvent::Encoded {
                from: TxId(0),
                to: TxId(1),
                changes: EncodedChanges::one((TxId(1), 0, 1)),
            }]
        );
    }

    #[test]
    fn multi_item_op_rejects_atomically() {
        let mut s = MtScheduler::with_k(1);
        assert!(s.write(TxId(1), ItemId(0)).is_accept());
        assert!(s.write(TxId(2), ItemId(1)).is_accept());
        assert!(s.write(TxId(2), ItemId(0)).is_accept());
        // T1 writing {y, x}: y fine, x refused (T2 is newer) → whole op rejected.
        let op = Operation::new(TxId(1), OpKind::Write, vec![ItemId(1), ItemId(0)]);
        assert!(!s.process(&op).is_accept());
    }
}
