//! A chunked, append-only concurrent row table for timestamp vectors.
//!
//! The concurrent scheduler used to keep every transaction's vector in one
//! `RwLock<Vec<Option<Row>>>`: every `begin`/`commit`/`abort` took the
//! *write* lock (to resize or reclaim) and stalled all concurrent
//! Definition 6 decisions. This table removes the global lock entirely:
//!
//! * **Chunked, append-only storage.** Slots live in geometrically growing
//!   chunks (`BASE << b` slots each), published once through an
//!   `AtomicPtr` spine and never moved or freed before drop. A `&RowSlot`
//!   therefore stays valid for the table's lifetime — no lock is needed to
//!   *address* a slot, only to touch its row.
//! * **Per-slot interior locking.** Each slot carries its own small
//!   `RwLock<Option<TsVec>>`. Creating, reading, defining into, and
//!   reclaiming a row touch exactly the slots involved; transactions on
//!   different rows never contend. Multi-slot acquisitions (the
//!   comparison/encode paths) order locks by ascending slot index for
//!   deadlock freedom.
//! * **Slab-style reuse.** Reclamation (III-D-6b) just sets the row back
//!   to `None` and flags the slot; the slot's atomics (refcount, finished,
//!   restart hint) survive so O(1) reclamation and the III-D-4 hint
//!   hand-off need no side tables. [`RowSlot::arm`] reports whether a
//!   previous incarnation lived in the slot, so callers can invalidate
//!   anything keyed by the transaction id (e.g. the order cache).
//!
//! The spine covers the whole `u32` id space (the last chunk is merely
//! never fully resident on real workloads); `ensure_slot` materializes a
//! chunk on first touch with a CAS, and losers free their allocation.

use std::sync::PoisonError;

use mdts_vector::TsVec;

use crate::sync::{
    AtomicBool, AtomicI64, AtomicPtr, AtomicU32, AtomicUsize, Ordering, RwLock, RwLockReadGuard,
    RwLockWriteGuard,
};

/// Slots in the first chunk; chunk `b` holds `BASE << b` slots.
#[cfg(not(loom))]
const BASE: usize = 1024;
/// Under loom a chunk is two slots, so a model touching indices 0 and 2
/// exercises chunk materialization (including the CAS-loser free path)
/// without registering a thousand model objects.
#[cfg(loom)]
const BASE: usize = 2;

/// Chunks in the spine. `BASE * (2^BUCKETS − 1) > u32::MAX`, so every
/// possible transaction id has a slot.
const BUCKETS: usize = 23;

/// One slot of the row table: the vector row plus the per-transaction
/// state that must survive the row itself (reclamation bookkeeping and
/// the III-D-4 restart hint).
#[derive(Debug)]
pub struct RowSlot {
    /// The timestamp vector; `None` = never begun, or reclaimed.
    row: RwLock<Option<TsVec>>,
    /// Number of `RT`/`WT` entries naming this transaction.
    refs: AtomicU32,
    /// Set when the transaction committed or aborted.
    finished: AtomicBool,
    /// Set by reclamation; consumed by [`arm`](Self::arm) on reuse.
    reclaimed: AtomicBool,
    /// Starvation-avoidance restart hint (III-D-4), valid iff `hint_set`.
    hint: AtomicI64,
    hint_set: AtomicBool,
}

impl RowSlot {
    fn new() -> Self {
        RowSlot {
            row: RwLock::new(None),
            refs: AtomicU32::new(0),
            finished: AtomicBool::new(false),
            reclaimed: AtomicBool::new(false),
            hint: AtomicI64::new(0),
            hint_set: AtomicBool::new(false),
        }
    }

    /// Read access to the row (poison-transparent).
    pub fn read(&self) -> RwLockReadGuard<'_, Option<TsVec>> {
        self.row.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Write access to the row (poison-transparent).
    pub fn write(&self) -> RwLockWriteGuard<'_, Option<TsVec>> {
        self.row.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// The `RT`/`WT` reference count.
    pub fn refs(&self) -> &AtomicU32 {
        &self.refs
    }

    /// The committed/aborted flag.
    pub fn finished(&self) -> &AtomicBool {
        &self.finished
    }

    /// Prepares the slot for a new incarnation (caller must hold the
    /// write guard on an empty row): clears `finished` and the reclaim
    /// flag. Returns whether a previous incarnation was reclaimed from
    /// this slot — if so, any state keyed by the transaction id outside
    /// the slot (such as memoized orders) is stale and must be
    /// invalidated before the new row becomes visible.
    pub fn arm(&self) -> bool {
        debug_assert_eq!(self.refs.load(Ordering::SeqCst), 0, "arming a referenced slot");
        self.finished.store(false, Ordering::SeqCst);
        self.reclaimed.swap(false, Ordering::Relaxed)
    }

    /// Marks the slot as torn down (caller must hold the write guard and
    /// have just taken the row).
    pub fn retire(&self) {
        self.reclaimed.store(true, Ordering::Relaxed);
    }

    /// Records the III-D-4 restart hint, overwriting any previous one.
    ///
    /// Ordering contract (audited in PR 4, checked by
    /// `rowtable_hint_handoff` in tests/loom_models.rs): classic message
    /// passing — the payload store may be Relaxed because the flag store
    /// is Release, and [`take_hint`](Self::take_hint) consumes the flag
    /// with an Acquire swap, so a taker that observes `hint_set == true`
    /// also observes the hint value that Release-preceded it.
    pub fn set_hint(&self, first: i64) {
        self.hint.store(first, Ordering::Relaxed);
        self.hint_set.store(true, Ordering::Release);
    }

    /// Consumes the restart hint, if one was recorded.
    pub fn take_hint(&self) -> Option<i64> {
        if self.hint_set.swap(false, Ordering::Acquire) {
            Some(self.hint.load(Ordering::Relaxed))
        } else {
            None
        }
    }

    /// Discards the restart hint (a committed transaction needs none).
    pub fn clear_hint(&self) {
        self.hint_set.store(false, Ordering::Relaxed);
    }
}

/// The lock-free-addressable row table. See the module docs.
pub struct RowTable {
    spine: [AtomicPtr<RowSlot>; BUCKETS],
    /// Exclusive upper bound of slot indices ever materialized — bounds
    /// the inspection scans; correctness never depends on it.
    high: AtomicUsize,
}

impl std::fmt::Debug for RowTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RowTable").field("high", &self.high.load(Ordering::Relaxed)).finish()
    }
}

/// Chunk index, chunk length, and offset within the chunk for a slot.
#[inline]
fn locate(idx: usize) -> (usize, usize, usize) {
    let b = (usize::BITS - 1 - (idx / BASE + 1).leading_zeros()) as usize;
    let start = ((1usize << b) - 1) * BASE;
    (b, BASE << b, idx - start)
}

impl RowTable {
    /// An empty table (no chunks resident).
    pub fn new() -> Self {
        RowTable {
            spine: std::array::from_fn(|_| AtomicPtr::new(std::ptr::null_mut())),
            high: AtomicUsize::new(0),
        }
    }

    /// The slot for `idx`, if its chunk has been materialized.
    ///
    /// Ordering contract (audited in PR 4, checked by
    /// `rowtable_chunk_publication` in tests/loom_models.rs): the spine
    /// load must be Acquire to pair with the Release side of the
    /// publishing CAS in [`ensure_slot`](Self::ensure_slot) — it
    /// synchronizes-with the publication, so the chunk's initialized
    /// slot contents (written before the CAS) are visible before any
    /// access through the returned reference.
    pub fn slot(&self, idx: usize) -> Option<&RowSlot> {
        let (b, _, off) = locate(idx);
        let chunk = self.spine[b].load(Ordering::Acquire);
        if chunk.is_null() {
            None
        } else {
            // SAFETY: a published chunk is never moved or freed before
            // drop, and `off < len` by construction of `locate`.
            Some(unsafe { &*chunk.add(off) })
        }
    }

    /// The slot for `idx`, materializing its chunk on first touch.
    pub fn ensure_slot(&self, idx: usize) -> &RowSlot {
        let (b, len, off) = locate(idx);
        assert!(b < BUCKETS, "slot index {idx} beyond table capacity");
        let mut chunk = self.spine[b].load(Ordering::Acquire);
        if chunk.is_null() {
            let fresh: Box<[RowSlot]> = (0..len).map(|_| RowSlot::new()).collect();
            let ptr = Box::into_raw(fresh) as *mut RowSlot;
            // Publication CAS: the success ordering must include Release
            // so the freshly initialized slots above happen-before any
            // Acquire spine load that observes `ptr`; the Acquire half
            // (and the failure ordering) pair with the *winner's*
            // Release when we lose, making the winner's initialization
            // visible before we hand out references into its chunk.
            match self.spine[b].compare_exchange(
                std::ptr::null_mut(),
                ptr,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => chunk = ptr,
                Err(winner) => {
                    // SAFETY: the CAS failed, so `ptr` was never published
                    // and we still own the allocation.
                    drop(unsafe { Box::from_raw(std::ptr::slice_from_raw_parts_mut(ptr, len)) });
                    chunk = winner;
                }
            }
        }
        self.high.fetch_max(idx + 1, Ordering::Relaxed);
        // SAFETY: as in `slot`.
        unsafe { &*chunk.add(off) }
    }

    /// Exclusive upper bound of ever-materialized slot indices.
    pub fn high(&self) -> usize {
        self.high.load(Ordering::Relaxed)
    }

    /// Iterates the materialized slots in index order (inspection only:
    /// the bound is a racy watermark).
    pub fn iter_slots(&self) -> impl Iterator<Item = (usize, &RowSlot)> {
        (0..self.high()).filter_map(|idx| self.slot(idx).map(|s| (idx, s)))
    }

    /// Number of spine chunks currently materialized (telemetry gauge;
    /// chunks are never freed before drop, so this only grows).
    pub fn resident_chunks(&self) -> usize {
        self.spine.iter().filter(|cell| !cell.load(Ordering::Acquire).is_null()).count()
    }
}

impl Default for RowTable {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for RowTable {
    fn drop(&mut self) {
        for (b, cell) in self.spine.iter().enumerate() {
            // `&mut self` already guarantees exclusive access; the load
            // is Acquire (not `get_mut`, which the loom shim cannot
            // offer) so the publishing CAS is visible even when the
            // drop happens on a thread that never touched the spine.
            let ptr = cell.load(Ordering::Acquire);
            if !ptr.is_null() {
                // SAFETY: `ptr` came from `Box::into_raw` of a `BASE << b`
                // slice and was published exactly once.
                drop(unsafe { Box::from_raw(std::ptr::slice_from_raw_parts_mut(ptr, BASE << b)) });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locate_covers_chunk_boundaries() {
        assert_eq!(locate(0), (0, BASE, 0));
        assert_eq!(locate(BASE - 1), (0, BASE, BASE - 1));
        assert_eq!(locate(BASE), (1, 2 * BASE, 0));
        assert_eq!(locate(3 * BASE - 1), (1, 2 * BASE, 2 * BASE - 1));
        assert_eq!(locate(3 * BASE), (2, 4 * BASE, 0));
        // The whole u32 id space stays within the spine.
        let (b, len, off) = locate(u32::MAX as usize);
        assert!(b < BUCKETS && off < len);
    }

    #[test]
    fn slots_are_stable_and_lazy() {
        let t = RowTable::new();
        assert!(t.slot(5).is_none(), "chunks materialize on demand");
        let a = t.ensure_slot(5) as *const RowSlot;
        *t.ensure_slot(5).write() = Some(TsVec::undefined(2));
        let b = t.ensure_slot(5) as *const RowSlot;
        assert_eq!(a, b, "a slot address never changes");
        assert_eq!(t.high(), 6);
        assert_eq!(t.iter_slots().filter(|(_, s)| s.read().is_some()).count(), 1);
    }

    #[test]
    fn arm_reports_previous_incarnation() {
        let t = RowTable::new();
        let slot = t.ensure_slot(7);
        {
            let mut row = slot.write();
            assert!(!slot.arm(), "first incarnation is clean");
            *row = Some(TsVec::undefined(2));
        }
        slot.finished().store(true, Ordering::SeqCst);
        {
            let mut row = slot.write();
            *row = None;
            slot.retire();
        }
        let mut row = slot.write();
        assert!(slot.arm(), "reuse after reclamation must be reported");
        assert!(!slot.finished().load(Ordering::SeqCst));
        *row = Some(TsVec::undefined(2));
        drop(row);
        assert!(!slot.arm(), "the reclaim flag is consumed");
    }

    #[test]
    fn hints_survive_reclamation() {
        let t = RowTable::new();
        let slot = t.ensure_slot(3);
        assert_eq!(slot.take_hint(), None);
        slot.set_hint(4);
        slot.set_hint(9); // overwrites
        *slot.write() = None;
        slot.retire();
        assert_eq!(slot.take_hint(), Some(9), "hints outlive the row");
        assert_eq!(slot.take_hint(), None, "taking consumes");
        slot.set_hint(2);
        slot.clear_hint();
        assert_eq!(slot.take_hint(), None);
    }

    /// Satellite (PR 4): the two `Box::from_raw` paths — the CAS-loser
    /// free in `ensure_slot` and the spine teardown in `Drop` — must not
    /// free memory another thread can still reach. Threads race chunk
    /// materialization (so some lose the CAS and free their allocation)
    /// while others hold `with_ts`-style read borrows into slots of the
    /// *same contested chunk* and write through them; the table drops
    /// only after every borrow ends. Run under `cargo miri test` (the CI
    /// miri lane does) to prove the absence of use-after-free rather
    /// than just the absence of a crash.
    #[test]
    fn retire_paths_never_free_reachable_memory() {
        for _ in 0..8 {
            let t = RowTable::new();
            std::thread::scope(|scope| {
                // Racers: all try to materialize the same second chunk;
                // exactly one CAS wins, the rest free their fresh boxes
                // while winners' slots are already in use.
                for i in 0..4 {
                    let t = &t;
                    scope.spawn(move || {
                        let slot = t.ensure_slot(BASE + i);
                        *slot.write() = Some(TsVec::undefined(2));
                    });
                }
                // Borrowers: hold read guards into the contested chunk
                // and look at the rows mid-race, `with_ts`-style.
                for i in 0..4 {
                    let t = &t;
                    scope.spawn(move || {
                        let slot = t.ensure_slot(BASE + i);
                        for _ in 0..16 {
                            let row = slot.read();
                            if let Some(ts) = row.as_ref() {
                                assert_eq!(ts.k(), 2);
                            }
                        }
                    });
                }
            });
            // `t` drops here: the spine teardown `Box::from_raw` runs
            // with no outstanding borrows.
        }
    }

    #[test]
    fn concurrent_ensure_publishes_one_chunk() {
        let t = RowTable::new();
        let addrs: Vec<usize> = std::thread::scope(|scope| {
            (0..8)
                .map(|i| {
                    let t = &t;
                    scope.spawn(move || {
                        let slot = t.ensure_slot(BASE + 17 + (i % 2));
                        slot as *const RowSlot as usize
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let first_even = addrs[0];
        for (i, &a) in addrs.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(a, first_even, "all threads must see the same chunk");
            }
        }
    }
}
