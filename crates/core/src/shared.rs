//! A concurrent MT(k) scheduler: Algorithm 1 behind `&self`.
//!
//! [`MtScheduler`](crate::MtScheduler) keeps the whole timestamp table
//! behind one `&mut self` — fine for log recognition, but an engine that
//! wants to schedule operations from many threads would have to serialize
//! every operation through one mutex. [`SharedMtScheduler`] splits the
//! table's state along the axes it is actually accessed on:
//!
//! * **`RT(x)`/`WT(x)` live in item shards** — a power-of-two array of
//!   mutexes, striped by item id, each holding a flat dense table of
//!   `(RT, WT)` pairs indexed by the item's high id bits (no hashing on
//!   the access path). An operation on `x` holds only the shard of `x`;
//!   operations on items in different shards never contend here.
//!   Holding the shard across the whole pick–Set–update sequence is what
//!   makes an operation atomic with respect to other accesses of `x` — the
//!   shard mutex plays the role of Algorithm 1's implicit critical section,
//!   but per item group instead of global.
//! * **Vector rows live in a chunked, append-only [`RowTable`]** — slots
//!   are addressed lock-free (chunks are published once via atomic
//!   pointers and never move), and each slot carries its own small
//!   `RwLock` around the vector. `begin`/`commit`/`abort` and every
//!   comparison touch only the slots involved; there is no global rows
//!   lock to stall on. Encoding (defining vector elements) takes the two
//!   slots' write locks in ascending index order, re-compares, and
//!   defines. The re-comparison under the write locks is essential:
//!   between the optimistic read-locked pass and the write acquisition, an
//!   encoder working on behalf of another item may have closed the very
//!   same open order (the two transactions can be `RT`/`WT` of many items
//!   at once). Re-deciding under the write locks preserves the write-once
//!   discipline of [`TsVec::define`].
//! * **Decided orders are memoized in a write-once [`OrderCache`]** —
//!   under the write-once element discipline a decided `TS(a) < TS(b)` can
//!   never be contradicted, so `Set(j, i)` first probes the cache and
//!   serves hits without touching any row lock. Only *decided* results are
//!   cached; the cache is flushed (epoch bump) whenever a row slot is
//!   reused after reclamation or a restart reinstalls a vector — the two
//!   events that can invalidate a memoized order. Inserts carry the epoch
//!   observed *before* the vectors were read, so an insert racing with an
//!   invalidation is dropped rather than resurrected.
//! * **The k-th-column counters are the lock-free
//!   [`AtomicKthCounters`]** — `ucount`/`lcount` draws need no lock at
//!   all; distinctness, not program order, is the invariant Algorithm 1
//!   needs of them.
//! * **Reclamation (III-D-6b) is refcount-driven and O(1)** — each slot
//!   carries an atomic count of the `RT`/`WT` entries naming it, bumped on
//!   displacement under the owning shard's lock. `commit` marks the slot
//!   finished; whoever drops the last reference frees the row (under that
//!   slot's write lock alone). The III-D-4 restart hint also lives in the
//!   slot, so no side table survives either.
//!
//! **Lock order** (deadlock freedom): item shard → row-slot locks in
//! ascending slot index → order-cache shard (leaf; nothing is acquired
//! while it is held). A thread holds at most one item shard at a time
//! (multi-item operations take them one by one) and at most two slot locks
//! at a time, always acquired low index first.
//!
//! # Divergences from the sequential scheduler
//!
//! * An operation orders `T_i` after *both* `RT(x)` and `WT(x)` — first
//!   the larger (Algorithm 1's `Set(j, i)`), then, if distinct, the
//!   smaller. Sequentially the second call is always a no-op (`TS` orders
//!   are transitive), so acceptance is identical to
//!   [`MtScheduler`](crate::MtScheduler); concurrently it closes the race
//!   where the "larger of the two" changed between the unsynchronized
//!   pick and the encode. When the *second* ordering fails for a read, the
//!   read is already ordered after the writer — exactly the lines 9–10
//!   situation — and proceeds without becoming the most recent reader.
//! * `abort` does not roll `RT`/`WT` back to previous holders; the aborted
//!   transaction's vector stays behind as an inert anchor until displaced
//!   (the sequential scheduler's fallback behaviour, here unconditional).
//!   Anchors only add ordering constraints, which never endangers
//!   serializability.
//! * Hot-item right-end encoding (III-D-5) and the `SetEvent` journal are
//!   not supported — the donor-prefix copy would have to hold both write
//!   locks for O(k) defines per access. Decision tracing *is* supported:
//!   [`SharedMtScheduler::attach_trace`] routes typed [`TraceEvent`]s to an
//!   `mdts-trace` buffer. Events are stamped inside the critical section
//!   that made the decision (row-slot locks for `Set`, item shard for
//!   accesses), so the merged sequence shows every decision after the
//!   encodes that justify it — the property the trace auditor relies on.
//!   Cache hits are stamped lock-free, but stay sound for the same reason:
//!   an entry is inserted only *after* the events justifying it were
//!   emitted, and reading the entry synchronizes with that insert, so the
//!   hit's sequence number lands after the justifying encode's.
//!
//! [`OrderCache`]: mdts_vector::OrderCache

use std::cell::RefCell;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

// The row-slot guards come from the cfg(loom)-switched layer so this
// module still compiles when `rowtable` runs under the model checker;
// the shard tables stay on `std::sync::Mutex` — they are plain dense
// arrays, not a lock-free protocol, and no loom model drives them.
use crate::sync::{RwLockReadGuard, RwLockWriteGuard};

use mdts_model::{ItemId, OpKind, Operation, TxId};
use mdts_trace::event::{
    scalar_cost, tree_cost, AccessOutcome, Change, EncodedChanges, RejectRule, SetEdgeOutcome,
};
use mdts_trace::{TraceEvent, TraceSink};
use mdts_vector::{
    AtomicKthCounters, BatchScratch, CmpResult, OrderCache, OrderCacheStats, SimdComparator, TsVec,
};

use crate::mtk::{Decision, MtOptions, Reject};
use crate::rowtable::{RowSlot, RowTable};

/// `RT(x)` and `WT(x)` of one item. They are always read together (the
/// pick path consults both holders), so they share a 8-byte slot — one
/// cache line covers 8 items.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct HolderPair {
    rt: TxId,
    wt: TxId,
}

impl Default for HolderPair {
    fn default() -> Self {
        HolderPair { rt: TxId::VIRTUAL, wt: TxId::VIRTUAL }
    }
}

/// Per-shard `RT`/`WT` table. Items are striped over shards by the low
/// bits of their id, so the high bits form a dense per-shard index — no
/// hashing on the access path, just one bounds-checked load. The table
/// grows on first touch of an item and never shrinks; untouched entries
/// read as `T₀` (exactly the absent-key semantics of the old `HashMap`s),
/// so steady state performs no allocation at all.
#[derive(Default, Debug)]
struct ShardItems {
    slots: Vec<HolderPair>,
}

impl ShardItems {
    /// Both holders of the item at dense per-shard index `local`.
    #[inline]
    fn pair(&self, local: usize) -> HolderPair {
        self.slots.get(local).copied().unwrap_or_default()
    }

    /// Mutable slot for `local`, growing the table on first touch.
    #[inline]
    fn pair_mut(&mut self, local: usize) -> &mut HolderPair {
        if local >= self.slots.len() {
            self.slots.resize(local + 1, HolderPair::default());
        }
        &mut self.slots[local]
    }
}

/// Outcome of the concurrent `Set(j, i)`.
enum SetOutcome {
    Ok,
    Refused { at: usize },
}

/// Which version generation a snapshot read must be served from (the
/// MV-MT(k) serving path, [`SharedMtScheduler::snapshot_read`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SnapshotRead {
    /// The reader is ordered after both current holders and became the
    /// item's `RT` holder: it reads the *current* committed value (the
    /// chain tail). Every future writer of the item is forced above the
    /// reader by the ordinary holder rule — or refused and aborted
    /// without installing a version — so the read can never go stale.
    Current,
    /// The reader is decided *below* one of the current holders: it must
    /// be served from an older version on the chain
    /// ([`SharedMtScheduler::snapshot_order_after`]). Holders only ever
    /// advance upward and decided `<` is transitive over write-once
    /// vectors, so every future writer of the item still orders above
    /// the reader — the stale read stays a consistent cut.
    Older,
}

/// Number of power-of-two buckets in the batched-compare size
/// distribution: bucket `i` counts batches of `2^i ..= 2^(i+1) - 1`
/// candidates, the last bucket absorbing everything from 64 up.
pub const BATCH_SIZE_BUCKETS: usize = 7;

/// Counters for the batched SIMD compare paths (ISSUE 8): the admission
/// probe on an order-cache miss and the MV chain-walk scan. Bulk
/// cache-fill traffic is counted by the order cache itself
/// ([`OrderCacheStats::bulk_inserts`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchedCompareStats {
    /// One-vs-many probes against an item's holder set on admission.
    pub probe_batches: u64,
    /// Newest-below-reader scans over MV chain segments.
    pub chain_batches: u64,
    /// Total candidates compared across both batched paths.
    pub candidates: u64,
    /// Batch-size distribution (see [`BATCH_SIZE_BUCKETS`]).
    pub size_buckets: [u64; BATCH_SIZE_BUCKETS],
}

/// Atomic backing of [`BatchedCompareStats`].
#[derive(Debug, Default)]
struct BatchedCounters {
    probe_batches: AtomicU64,
    chain_batches: AtomicU64,
    candidates: AtomicU64,
    size_buckets: [AtomicU64; BATCH_SIZE_BUCKETS],
}

std::thread_local! {
    /// Reusable scratch for the batched comparator: per thread,
    /// warmed by the first batch, allocation-free afterwards (the
    /// zero-alloc gate in tests/alloc_zero.rs covers both batched
    /// paths). `const`-initialized so first touch performs no lazy
    /// registration either.
    static BATCH_SCRATCH: RefCell<BatchScratch> = const { RefCell::new(BatchScratch::new()) };
}

/// The concurrent MT(k) scheduler. All methods take `&self`; the type is
/// `Send + Sync` and meant to be shared across worker threads (e.g. behind
/// an `Arc`).
#[derive(Debug)]
pub struct SharedMtScheduler {
    opts: MtOptions,
    shard_mask: usize,
    /// `log₂(#shards)` — item id low bits select the shard, the remaining
    /// high bits are the dense index within it.
    shard_bits: u32,
    shards: Box<[Mutex<ShardItems>]>,
    /// Vector rows indexed by transaction id, one slot per id. Slot 0 is
    /// `T₀` (`⟨0, *, …⟩`), never reclaimed.
    rows: RowTable,
    /// Memoized decided comparisons (see the module docs).
    cache: OrderCache,
    counters: AtomicKthCounters,
    /// Per-column running maximum over every *saturated* commit stamp
    /// published by [`stamp_commit`](Self::stamp_commit). Snapshot readers
    /// define their own elements strictly above these maxima, which orders
    /// every reader after every version published before the reader's
    /// element was defined — the monotonicity that makes seq-watermark
    /// version GC sound (DESIGN.md §8). `SeqCst`, matching the MV store's
    /// install/registry counters the soundness argument chains through.
    col_max: Box<[AtomicI64]>,
    /// Batched-compare counters (ISSUE 8).
    batched: BatchedCounters,
    /// Decision-trace sink (disabled by default; see `mdts-trace`).
    trace: TraceSink,
}

/// Default number of item shards (power of two).
pub const DEFAULT_SHARDS: usize = 64;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The vector inside a slot guard, panicking if the row is absent
/// (protocol invariant: every transaction referenced by `RT`/`WT` or being
/// scheduled has a live vector).
fn vec_of(guard: &Option<TsVec>, tx: TxId) -> &TsVec {
    guard.as_ref().unwrap_or_else(|| panic!("no live timestamp vector for {tx}"))
}

impl SharedMtScheduler {
    /// Creates a scheduler with [`DEFAULT_SHARDS`] item shards.
    ///
    /// # Panics
    /// Panics if `opts.k == 0`, or if `opts` requests hot-item encoding or
    /// the event journal (unsupported here, see the module docs).
    pub fn new(opts: MtOptions) -> Self {
        Self::with_shards(opts, DEFAULT_SHARDS)
    }

    /// Algorithm 1 defaults for dimension `k`.
    pub fn with_k(k: usize) -> Self {
        Self::new(MtOptions::new(k))
    }

    /// Creates a scheduler with at least `shards` item shards (rounded up
    /// to a power of two so striping is a mask).
    pub fn with_shards(opts: MtOptions, shards: usize) -> Self {
        assert!(opts.k >= 1, "vector dimension k must be at least 1");
        assert!(
            opts.hot_encoding.is_none(),
            "hot-item encoding is not supported by the concurrent scheduler"
        );
        assert!(
            !opts.record_events,
            "the SetEvent journal is not supported by the concurrent scheduler"
        );
        let n = shards.max(1).next_power_of_two();
        let shards: Box<[Mutex<ShardItems>]> =
            (0..n).map(|_| Mutex::new(ShardItems::default())).collect();
        let rows = RowTable::new();
        *rows.ensure_slot(0).write() = Some(TsVec::origin(opts.k));
        let k = opts.k;
        SharedMtScheduler {
            opts,
            shard_mask: n - 1,
            shard_bits: n.trailing_zeros(),
            shards,
            rows,
            cache: OrderCache::new(),
            counters: AtomicKthCounters::new(),
            col_max: (0..k).map(|_| AtomicI64::new(0)).collect(),
            batched: BatchedCounters::default(),
            trace: TraceSink::disabled(),
        }
    }

    /// Routes the scheduler's decision trace to `sink`. Call before the
    /// scheduler is shared across threads (the handle itself is cheap to
    /// clone and thread-safe once installed).
    pub fn attach_trace(&mut self, sink: TraceSink) {
        self.trace = sink;
    }

    /// The trace sink in force.
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// The configuration.
    pub fn options(&self) -> &MtOptions {
        &self.opts
    }

    /// Vector dimension `k`.
    pub fn k(&self) -> usize {
        self.opts.k
    }

    /// Number of item shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Hit/miss/insert/invalidation counters of the write-once order
    /// cache.
    pub fn order_cache_stats(&self) -> OrderCacheStats {
        self.cache.stats()
    }

    /// Counters of the batched SIMD compare paths (ISSUE 8).
    pub fn batched_compare_stats(&self) -> BatchedCompareStats {
        let b = &self.batched;
        BatchedCompareStats {
            probe_batches: b.probe_batches.load(Ordering::Relaxed),
            chain_batches: b.chain_batches.load(Ordering::Relaxed),
            candidates: b.candidates.load(Ordering::Relaxed),
            size_buckets: std::array::from_fn(|i| b.size_buckets[i].load(Ordering::Relaxed)),
        }
    }

    /// Ticks the batched-compare counters for one batch of `n` candidates.
    #[inline]
    fn note_batch(&self, chain: bool, n: usize) {
        debug_assert!(n >= 1);
        let b = &self.batched;
        if chain {
            b.chain_batches.fetch_add(1, Ordering::Relaxed);
        } else {
            b.probe_batches.fetch_add(1, Ordering::Relaxed);
        }
        b.candidates.fetch_add(n as u64, Ordering::Relaxed);
        let bucket = (usize::BITS - 1 - n.leading_zeros()) as usize;
        b.size_buckets[bucket.min(BATCH_SIZE_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
    }

    /// The shard owning `item` and the item's dense index within it.
    #[inline]
    fn shard_of(&self, item: ItemId) -> (&Mutex<ShardItems>, usize) {
        let idx = item.index();
        (&self.shards[idx & self.shard_mask], idx >> self.shard_bits)
    }

    fn slot_expect(&self, tx: TxId) -> &RowSlot {
        self.rows
            .slot(tx.index())
            .unwrap_or_else(|| panic!("no row slot for referenced transaction {tx}"))
    }

    /// Read guards for two distinct slots, returned in `(a, b)` order but
    /// acquired in ascending slot index (the lock order).
    fn read_pair(
        &self,
        a: TxId,
        b: TxId,
    ) -> (RwLockReadGuard<'_, Option<TsVec>>, RwLockReadGuard<'_, Option<TsVec>>) {
        debug_assert_ne!(a, b, "a slot lock is not reentrant");
        let (sa, sb) = (self.slot_expect(a), self.slot_expect(b));
        if a.index() < b.index() {
            let ga = sa.read();
            (ga, sb.read())
        } else {
            let gb = sb.read();
            (sa.read(), gb)
        }
    }

    /// Write guards for two distinct slots, ascending acquisition as in
    /// [`read_pair`](Self::read_pair).
    fn write_pair(
        &self,
        a: TxId,
        b: TxId,
    ) -> (RwLockWriteGuard<'_, Option<TsVec>>, RwLockWriteGuard<'_, Option<TsVec>>) {
        debug_assert_ne!(a, b, "a slot lock is not reentrant");
        let (sa, sb) = (self.slot_expect(a), self.slot_expect(b));
        if a.index() < b.index() {
            let ga = sa.write();
            (ga, sb.write())
        } else {
            let gb = sb.write();
            (sa.write(), gb)
        }
    }

    // ---- order cache -----------------------------------------------------

    fn cache_get(&self, a: TxId, b: TxId) -> Option<CmpResult> {
        if !self.opts.order_cache {
            return None;
        }
        self.cache.get(a.0, b.0)
    }

    /// Inserts a comparison result observed at `epoch` (sampled *before*
    /// the vectors were read). Undecided results are ignored by the cache;
    /// a stale epoch drops the insert.
    fn cache_put(&self, epoch: u64, a: TxId, b: TxId, result: CmpResult) {
        if self.opts.order_cache {
            self.cache.insert(epoch, a.0, b.0, result);
        }
    }

    // ---- lifecycle -------------------------------------------------------

    /// Ensures a (fully undefined) vector row exists for `tx`.
    pub fn begin(&self, tx: TxId) {
        self.ensure_tx(tx);
    }

    fn ensure_tx(&self, tx: TxId) {
        let slot = self.rows.ensure_slot(tx.index());
        {
            if slot.read().is_some() {
                return;
            }
        }
        let mut row = slot.write();
        if row.is_none() {
            if slot.arm() {
                // The id is being reused after reclamation: memoized
                // orders naming it are about a dead incarnation. Flush
                // *before* the new row becomes visible, so any insert
                // racing with us carries a stale epoch and is dropped.
                self.cache.invalidate_all();
            }
            *row = Some(TsVec::undefined(self.opts.k));
        }
    }

    /// Registers a restart of `aborted` under a fresh id: if the
    /// starvation fix recorded a hint, the new incarnation starts with
    /// `TS = ⟨TS(blocker,1)+1, *, …⟩` (Section III-D-4).
    ///
    /// Unlike the sequential scheduler, the in-place flush (`new_tx ==
    /// aborted`) is not supported: the aborted row may still anchor
    /// ordering constraints other threads encoded against it, so the new
    /// incarnation must use a fresh id.
    pub fn begin_restarted(&self, new_tx: TxId, aborted: TxId) {
        assert_ne!(new_tx, aborted, "concurrent restarts must use a fresh transaction id");
        let hint = self.rows.slot(aborted.index()).and_then(RowSlot::take_hint);
        self.trace.emit(|| TraceEvent::Restart { tx: new_tx, aborted, hint });
        match hint {
            Some(first) => {
                let mut v = TsVec::undefined(self.opts.k);
                v.define(0, first);
                let slot = self.rows.ensure_slot(new_tx.index());
                let mut row = slot.write();
                debug_assert!(row.is_none(), "restart id {new_tx} already in use");
                if slot.arm() {
                    self.cache.invalidate_all();
                }
                *row = Some(v);
            }
            None => self.ensure_tx(new_tx),
        }
    }

    /// Notes a commit and attempts reclamation (III-D-6b). Returns whether
    /// the row could be dropped already; otherwise it is dropped — in O(1)
    /// — by whoever displaces its last `RT`/`WT` reference.
    pub fn commit(&self, tx: TxId) -> bool {
        self.trace.emit(|| TraceEvent::Commit { tx });
        if let Some(slot) = self.rows.slot(tx.index()) {
            slot.clear_hint();
        }
        self.finish(tx)
    }

    /// Notes an abort. `RT`/`WT` entries naming `tx` are *not* rolled
    /// back; the row stays as an inert ordering anchor until displaced.
    /// The starvation hint (if any) is kept for `begin_restarted`.
    pub fn abort(&self, tx: TxId) {
        self.trace.emit(|| TraceEvent::Abort { tx });
        self.finish(tx);
    }

    /// Marks `tx` finished and reclaims its row if already unreferenced.
    ///
    /// The `finished` store and `refs` load are `SeqCst`, as are
    /// `dec_ref`'s `refs` decrement and `finished` load: the classic
    /// store-then-load on two locations needs the single total order so
    /// that at least one of the two parties (finisher or last
    /// dereferencer) observes the other and performs the reclaim
    /// (audited in PR 4; the Dekker invariant is checked by
    /// `rowtable_reclaim_dekker` in tests/loom_models.rs).
    fn finish(&self, tx: TxId) -> bool {
        if tx.is_virtual() {
            return false;
        }
        let Some(slot) = self.rows.slot(tx.index()) else {
            return false;
        };
        {
            if slot.read().is_none() {
                return false;
            }
            slot.finished().store(true, Ordering::SeqCst);
        }
        if slot.refs().load(Ordering::SeqCst) == 0 {
            self.try_reclaim(tx, slot)
        } else {
            false
        }
    }

    /// Drops the row if (still) unreferenced and finished. The slot's
    /// write lock serializes racing reclaimers; the re-check under it
    /// keeps the drop exactly-once. A finished transaction never gains
    /// references (only a live accessor can become `RT`/`WT`), so a row
    /// observed unreferenced here cannot be resurrected.
    fn try_reclaim(&self, tx: TxId, slot: &RowSlot) -> bool {
        let mut row = slot.write();
        if row.is_some()
            && slot.refs().load(Ordering::SeqCst) == 0
            && slot.finished().load(Ordering::SeqCst)
        {
            *row = None;
            slot.retire();
            debug_assert!(!tx.is_virtual(), "T₀ is never finished");
            true
        } else {
            false
        }
    }

    fn inc_ref(&self, tx: TxId) {
        if tx.is_virtual() {
            return; // T₀ is never reclaimed; skip the bookkeeping.
        }
        self.slot_expect(tx).refs().fetch_add(1, Ordering::SeqCst);
    }

    fn dec_ref(&self, tx: TxId) {
        if tx.is_virtual() {
            return;
        }
        let slot = self.slot_expect(tx);
        let prev = slot.refs().fetch_sub(1, Ordering::SeqCst);
        debug_assert!(prev > 0, "refcount underflow for {tx}");
        if prev == 1 && slot.finished().load(Ordering::SeqCst) {
            self.try_reclaim(tx, slot);
        }
    }

    // ---- procedure Set ---------------------------------------------------

    /// Public form of procedure `Set(j, i)`: try to establish (or verify)
    /// `TS(j) < TS(i)`. Returns `false` iff the vectors already say
    /// `TS(j) > TS(i)`.
    pub fn order(&self, j: TxId, i: TxId) -> bool {
        matches!(self.set_less(j, i), SetOutcome::Ok)
    }

    /// Emits a [`TraceEvent::Compare`]. For a fresh comparison the caller
    /// must still hold the locks under which `result` was computed:
    /// decided results are stable (write-once elements), so stamping the
    /// sequence number before the locks are released keeps every decision
    /// event after the encodes that justify it. A cache hit is emitted
    /// lock-free but inherits the same guarantee transitively — the entry
    /// was inserted after the justifying events were emitted, and reading
    /// it synchronizes with that insert.
    #[inline]
    fn emit_compare(&self, a: TxId, b: TxId, result: CmpResult, cached: bool) {
        let k = self.opts.k;
        self.trace.emit(|| TraceEvent::Compare {
            a,
            b,
            result,
            // A hit costs one memo-table probe instead of a column walk.
            scalar_ops: if cached { 1 } else { scalar_cost(result, k) },
            tree_steps: tree_cost(k),
            cached,
        });
    }

    #[inline]
    fn emit_edge(&self, from: TxId, to: TxId, outcome: impl FnOnce() -> SetEdgeOutcome) {
        self.trace.emit(|| TraceEvent::SetEdge { from, to, outcome: outcome() });
    }

    fn set_less(&self, j: TxId, i: TxId) -> SetOutcome {
        self.set_less_with(j, i, false)
    }

    /// `Set(j, i)` with a choice of element-value strategy for `i`'s
    /// side. With `boost` every element defined on `i`'s side is chosen
    /// strictly above the published per-column maximum (`col_max`), so
    /// `i` can never later be decided below a transaction whose commit
    /// stamp was published before the element was defined — the snapshot
    /// readers' invariant behind chain-walk termination at the GC pivot
    /// (DESIGN.md §8). Without `boost` the ordinary minimal values are
    /// used.
    fn set_less_with(&self, j: TxId, i: TxId, boost: bool) -> SetOutcome {
        if j == i {
            return SetOutcome::Ok; // line 15
        }
        // Cache fast path: a decided order is immutable, so a hit resolves
        // the call without touching any row lock.
        if let Some(cmp) = self.cache_get(j, i) {
            self.emit_compare(j, i, cmp, true);
            return match cmp {
                CmpResult::Less { .. } => {
                    self.emit_edge(j, i, || SetEdgeOutcome::AlreadyOrdered);
                    SetOutcome::Ok
                }
                CmpResult::Greater { at } => {
                    self.emit_edge(j, i, || SetEdgeOutcome::Refused { at });
                    SetOutcome::Refused { at }
                }
                // The cache never stores undecided results.
                _ => unreachable!("order cache served an undecided result"),
            };
        }
        // The epoch must be sampled before the vectors are read, so an
        // invalidation racing with this call drops our insert.
        let epoch = self.cache.epoch();
        // Optimistic pass: most Set calls find the order already decided,
        // and the two read locks let them run in parallel. The memo
        // insert happens after both the justifying emits (see
        // emit_compare) and the release of the row locks — the cache must
        // never be touched while protocol locks are held.
        let decided = {
            let (gj, gi) = self.read_pair(j, i);
            let cmp = SimdComparator::compare(vec_of(&gj, j), vec_of(&gi, i));
            match cmp {
                CmpResult::Less { .. } => {
                    self.emit_compare(j, i, cmp, false);
                    self.emit_edge(j, i, || SetEdgeOutcome::AlreadyOrdered);
                    Some((cmp, SetOutcome::Ok))
                }
                CmpResult::Greater { at } => {
                    self.emit_compare(j, i, cmp, false);
                    self.emit_edge(j, i, || SetEdgeOutcome::Refused { at });
                    Some((cmp, SetOutcome::Refused { at }))
                }
                _ => None,
            }
        };
        if let Some((cmp, outcome)) = decided {
            self.cache_put(epoch, j, i, cmp);
            return outcome;
        }
        // The order looked open: re-decide under the write locks (a
        // concurrent encoder may have closed it meanwhile) and encode.
        let k = self.opts.k;
        let (memo, outcome) = {
            let (mut gj, mut gi) = self.write_pair(j, i);
            let cmp = SimdComparator::compare(vec_of(&gj, j), vec_of(&gi, i));
            self.emit_compare(j, i, cmp, false);
            match cmp {
                CmpResult::Less { .. } => {
                    self.emit_edge(j, i, || SetEdgeOutcome::AlreadyOrdered);
                    (Some(cmp), SetOutcome::Ok)
                }
                CmpResult::Greater { at } => {
                    self.emit_edge(j, i, || SetEdgeOutcome::Refused { at });
                    (Some(cmp), SetOutcome::Refused { at })
                }
                CmpResult::Identical => {
                    // Unreachable between distinct transactions: the k-th
                    // column always holds globally distinct counter values.
                    debug_assert!(false, "identical fully-defined vectors for {j} and {i}");
                    (None, SetOutcome::Refused { at: k - 1 })
                }
                CmpResult::EqualUndefined { at } => {
                    let floor = if boost { self.col_max[at].load(Ordering::SeqCst) } else { 0 };
                    if at == k - 1 {
                        let (a, b) = if boost {
                            let a = self.counters.fresh_upper();
                            (a, self.counters.fresh_upper_above(a.max(floor)))
                        } else {
                            self.counters.fresh_pair()
                        };
                        vec_of_mut(&mut gj, j).define(at, a);
                        vec_of_mut(&mut gi, i).define(at, b);
                        self.emit_edge(j, i, || SetEdgeOutcome::Encoded {
                            changes: EncodedChanges::pair((j, at, a), (i, at, b)),
                        });
                    } else {
                        // floor ≥ 0, so the boosted value stays above 1.
                        let b = floor + 2;
                        vec_of_mut(&mut gj, j).define(at, 1);
                        vec_of_mut(&mut gi, i).define(at, b);
                        self.emit_edge(j, i, || SetEdgeOutcome::Encoded {
                            changes: EncodedChanges::pair((j, at, 1), (i, at, b)),
                        });
                    }
                    (Some(CmpResult::Less { at }), SetOutcome::Ok)
                }
                CmpResult::RightUndefined { at } => {
                    // TS(i, at) undefined; TS(j, at) defined.
                    let mut bound = vec_of(&gj, j).get(at).expect("defined by case");
                    if boost {
                        bound = bound.max(self.col_max[at].load(Ordering::SeqCst));
                    }
                    let value = if at == k - 1 {
                        self.counters.fresh_upper_above(bound)
                    } else {
                        bound + 1
                    };
                    vec_of_mut(&mut gi, i).define(at, value);
                    self.emit_edge(j, i, || SetEdgeOutcome::Encoded {
                        changes: EncodedChanges::one((i, at, value)),
                    });
                    (Some(CmpResult::Less { at }), SetOutcome::Ok)
                }
                CmpResult::LeftUndefined { at } => {
                    // TS(j, at) undefined; TS(i, at) defined.
                    let bound = vec_of(&gi, i).get(at).expect("defined by case");
                    let value = if at == k - 1 {
                        self.counters.fresh_lower_below(bound)
                    } else {
                        bound - 1
                    };
                    vec_of_mut(&mut gj, j).define(at, value);
                    self.emit_edge(j, i, || SetEdgeOutcome::Encoded {
                        changes: EncodedChanges::one((j, at, value)),
                    });
                    (Some(CmpResult::Less { at }), SetOutcome::Ok)
                }
            }
        };
        if let Some(cmp) = memo {
            self.cache_put(epoch, j, i, cmp);
        }
        outcome
    }

    // ---- scheduling ------------------------------------------------------

    /// Definition 6 comparison via the cache, else under the two slots'
    /// read locks (inserting any fresh decided result). Does not emit a
    /// trace event — used by the internal pick/reader-rule consults, which
    /// never emitted one.
    fn compare_quick(&self, a: TxId, b: TxId) -> CmpResult {
        if let Some(cmp) = self.cache_get(a, b) {
            return cmp;
        }
        let epoch = self.cache.epoch();
        let cmp = {
            let (ga, gb) = self.read_pair(a, b);
            SimdComparator::compare(vec_of(&ga, a), vec_of(&gb, b))
        };
        // After the row locks are released: a memo insert must never
        // stall a thread that holds protocol state.
        self.cache_put(epoch, a, b, cmp);
        cmp
    }

    /// Lines 5–6: the larger of `RT(x)` and `WT(x)` under the vector
    /// order. Returns `(larger, smaller)`.
    fn pick(&self, HolderPair { rt, wt }: HolderPair) -> (TxId, TxId) {
        if rt == wt {
            return (rt, wt);
        }
        if matches!(self.compare_quick(rt, wt), CmpResult::Less { .. }) {
            (wt, rt)
        } else {
            (rt, wt)
        }
    }

    fn set_rt_locked(&self, s: &mut ShardItems, local: usize, tx: TxId) {
        let prev = std::mem::replace(&mut s.pair_mut(local).rt, tx);
        if prev != tx {
            self.inc_ref(tx);
            self.dec_ref(prev);
        }
    }

    fn set_wt_locked(&self, s: &mut ShardItems, local: usize, tx: TxId) {
        let prev = std::mem::replace(&mut s.pair_mut(local).wt, tx);
        if prev != tx {
            self.inc_ref(tx);
            self.dec_ref(prev);
        }
    }

    fn note_reject(&self, tx: TxId, against: TxId) {
        if self.opts.starvation_flush {
            // Blocker's first element is defined whenever Set refused (the
            // deciding column has both elements defined; column 0 is at or
            // before it).
            let first = self.with_ts(against, |v| {
                v.unwrap_or_else(|| panic!("no live timestamp vector for {against}")).get(0)
            });
            if let Some(first) = first {
                self.rows.ensure_slot(tx.index()).set_hint(first + 1);
            }
        }
    }

    /// ISSUE 8: the order-cache-miss batch. Compares the probe
    /// transaction `tx` against the full holder set of an item in one
    /// batched SIMD call and bulk-fills the decided verdicts into the
    /// order cache, so the `Set` calls that follow are answered lock-free
    /// from the memo table instead of taking one row-pair lock per
    /// holder. Holders whose order is already memoized are skipped; with
    /// the cache disabled every holder is probed (that is what the
    /// `--nocache` bench lanes exercise) but nothing is stored.
    ///
    /// Runs under the item's shard lock. Row *read* locks are taken in
    /// ascending slot order — the established lock order — and the cache
    /// is only touched after they are released. Compare events are
    /// emitted under the locks, before the bulk insert, preserving the
    /// cache soundness argument (an entry exists only after the events
    /// justifying it).
    fn batched_order_probe(&self, tx: TxId, HolderPair { rt, wt }: HolderPair) {
        // Candidate set: the distinct holders other than the probe whose
        // order against it is not already memoized.
        let mut cands = [tx; 2];
        let mut n = 0;
        for h in [rt, wt] {
            if h != tx && !(n == 1 && cands[0] == h) && self.cache_get(tx, h).is_none() {
                cands[n] = h;
                n += 1;
            }
        }
        if n == 0 {
            return;
        }
        let epoch = self.cache.epoch();
        let mut decided = [(TxId::VIRTUAL, CmpResult::Identical); 2];
        {
            // All row read guards in one ascending acquisition.
            let mut ids = [tx, cands[0], cands[1]];
            let ids = &mut ids[..1 + n];
            ids.sort_unstable_by_key(|t| t.index());
            let mut guards: [Option<RwLockReadGuard<'_, Option<TsVec>>>; 3] = [None, None, None];
            for (g, &id) in guards.iter_mut().zip(ids.iter()) {
                *g = Some(self.slot_expect(id).read());
            }
            let vec_for = |id: TxId| -> &TsVec {
                let i = ids.iter().position(|&x| x == id).expect("id was locked");
                vec_of(guards[i].as_ref().expect("guard taken above"), id)
            };
            BATCH_SCRATCH.with(|scratch| {
                let mut scratch = scratch.borrow_mut();
                let decisions = scratch.compare_one_vs_many(vec_for(tx), n, |i| vec_for(cands[i]));
                for (i, &d) in decisions.iter().enumerate() {
                    self.emit_compare(tx, cands[i], d, false);
                    decided[i] = (cands[i], d);
                }
            });
        }
        self.note_batch(false, n);
        if self.opts.order_cache {
            self.cache.insert_bulk(epoch, tx.0, decided[..n].iter().map(|&(c, d)| (c.0, d)));
        }
    }

    /// ISSUE 10: admission prewarm. Probes each `(item, tx)` pair's
    /// Definition-6 order against the item's current holders, grouping
    /// pairs that land on the same item shard under a single shard-lock
    /// acquisition so each `RT`/`WT` flat-table region — and the order-
    /// cache lines it feeds — is touched once per admission batch instead
    /// of once per transaction. Each probe runs through the same fused
    /// one-vs-many compare lane as the access-path miss probe
    /// ([`batched_order_probe`](Self::batched_order_probe)) and bulk-fills
    /// the order cache with whatever it decides.
    ///
    /// This is purely a memoization warm-up: only already-*decided*
    /// orders enter the cache, undecided ones stay open, and no holder or
    /// vector element is written. The decisions taken by later
    /// [`read`](Self::read)/[`write`](Self::write) calls are therefore
    /// identical with or without the warm-up — the admission-oracle
    /// proptest in the engine crate pins this decision-for-decision.
    ///
    /// `pairs` is reordered in place (grouped by owning shard); the caller
    /// owns the buffer so the steady state stays allocation-free. Pairs
    /// naming a transaction without a live vector row (never begun, or
    /// already reclaimed) are skipped.
    pub fn warm_probes(&self, pairs: &mut [(ItemId, TxId)]) {
        if pairs.is_empty() {
            return;
        }
        let mask = self.shard_mask;
        let bits = self.shard_bits;
        // Group by shard, then by dense index within it, so the flat
        // table is walked in one forward pass per shard.
        pairs.sort_unstable_by_key(|&(item, _)| {
            let idx = item.index();
            (idx & mask, idx >> bits)
        });
        let mut i = 0;
        while i < pairs.len() {
            let shard_idx = pairs[i].0.index() & mask;
            let mut j = i + 1;
            while j < pairs.len() && pairs[j].0.index() & mask == shard_idx {
                j += 1;
            }
            let s = lock(&self.shards[shard_idx]);
            for &(item, tx) in &pairs[i..j] {
                if self.rows.slot(tx.index()).is_none_or(|slot| slot.read().is_none()) {
                    continue;
                }
                let local = item.index() >> bits;
                self.batched_order_probe(tx, s.pair(local));
            }
            drop(s);
            i = j;
        }
    }

    /// Orders `tx` after both current holders of `item`, larger first.
    /// Returns `Ok` when fully ordered; `Refused` carries which holder
    /// blocked. The holders cannot change underneath us — the caller holds
    /// the shard lock — but their *vectors* may gain elements from
    /// concurrent encoders, which is why the smaller holder is verified
    /// too rather than trusted to transitivity.
    fn order_after_holders(
        &self,
        tx: TxId,
        larger: TxId,
        smaller: TxId,
    ) -> Result<(), (TxId, usize)> {
        match self.set_less(larger, tx) {
            SetOutcome::Ok => {}
            SetOutcome::Refused { at } => return Err((larger, at)),
        }
        if smaller != larger {
            match self.set_less(smaller, tx) {
                SetOutcome::Ok => {}
                SetOutcome::Refused { at } => return Err((smaller, at)),
            }
        }
        Ok(())
    }

    #[inline]
    fn emit_access(
        &self,
        tx: TxId,
        item: ItemId,
        kind: OpKind,
        rt: TxId,
        wt: TxId,
        outcome: AccessOutcome,
    ) {
        self.trace.emit(|| TraceEvent::Access { tx, item, kind, rt, wt, outcome });
    }

    /// Schedules a read of `item` by `tx` (the `read` arm of `Scheduler`).
    pub fn read(&self, tx: TxId, item: ItemId) -> Decision {
        self.ensure_tx(tx);
        let (shard, local) = self.shard_of(item);
        let mut s = lock(shard);
        let pair = s.pair(local);
        let HolderPair { rt, wt } = pair;
        let (larger, smaller) = self.pick(pair);
        self.batched_order_probe(tx, pair);
        match self.order_after_holders(tx, larger, smaller) {
            Ok(()) => {
                self.emit_access(tx, item, OpKind::Read, rt, wt, AccessOutcome::Granted);
                self.set_rt_locked(&mut s, local, tx); // line 7
                Decision::accept()
            }
            Err((against, at)) => {
                // Lines 9–10: proceed without becoming the most recent
                // reader if ordered after the latest writer. When the
                // blocker is the reader and the writer was the *larger*
                // holder, Set(wt, tx) already succeeded above.
                let reader_rule = self.opts.reader_rule && against == rt && rt != wt;
                if reader_rule {
                    let after_writer = if larger == wt {
                        true // ordered after wt before rt refused
                    } else if self.opts.relaxed_reader_rule {
                        matches!(self.set_less(wt, tx), SetOutcome::Ok)
                    } else {
                        wt == tx || self.is_less(wt, tx)
                    };
                    if after_writer {
                        self.emit_access(
                            tx,
                            item,
                            OpKind::Read,
                            rt,
                            wt,
                            AccessOutcome::GrantedInvisible,
                        );
                        return Decision::accept();
                    }
                }
                self.note_reject(tx, against);
                self.emit_access(
                    tx,
                    item,
                    OpKind::Read,
                    rt,
                    wt,
                    AccessOutcome::Rejected {
                        against,
                        column: at,
                        rule: if reader_rule {
                            RejectRule::ReaderRule
                        } else {
                            RejectRule::VectorOrder
                        },
                    },
                );
                Decision::Reject(Reject { tx, against, item, column: at })
            }
        }
    }

    /// Schedules a write of `item` by `tx` (the `write` arm of
    /// `Scheduler`).
    pub fn write(&self, tx: TxId, item: ItemId) -> Decision {
        self.ensure_tx(tx);
        let (shard, local) = self.shard_of(item);
        let mut s = lock(shard);
        let pair = s.pair(local);
        let HolderPair { rt, wt } = pair;
        let (larger, smaller) = self.pick(pair);
        self.batched_order_probe(tx, pair);
        match self.order_after_holders(tx, larger, smaller) {
            Ok(()) => {
                self.emit_access(tx, item, OpKind::Write, rt, wt, AccessOutcome::Granted);
                self.set_wt_locked(&mut s, local, tx); // line 12
                Decision::accept()
            }
            Err((against, at)) => {
                // Thomas write rule (III-D-6c): if the blocked writer sits
                // between all readers and the newer writer, ignore the
                // write. When the blocker is the writer and the reader was
                // the larger holder, Set(rt, tx) already succeeded above.
                let thomas = self.opts.thomas_write_rule && against == wt && rt != wt;
                if thomas {
                    let after_reader =
                        larger == rt || matches!(self.set_less(rt, tx), SetOutcome::Ok);
                    if after_reader {
                        self.emit_access(
                            tx,
                            item,
                            OpKind::Write,
                            rt,
                            wt,
                            AccessOutcome::GrantedIgnored,
                        );
                        return Decision::Accept { ignored: vec![item] };
                    }
                }
                self.note_reject(tx, against);
                self.emit_access(
                    tx,
                    item,
                    OpKind::Write,
                    rt,
                    wt,
                    AccessOutcome::Rejected {
                        against,
                        column: at,
                        rule: if thomas { RejectRule::ThomasRule } else { RejectRule::VectorOrder },
                    },
                );
                Decision::Reject(Reject { tx, against, item, column: at })
            }
        }
    }

    /// Schedules a whole (possibly multi-item) operation. Items are
    /// processed in ascending order (the access set is sorted), taking the
    /// shards one at a time; the first rejection rejects the operation.
    /// Element definitions made for earlier items remain — they are valid
    /// constraints regardless, and the issuing transaction aborts anyway.
    pub fn process(&self, op: &Operation) -> Decision {
        let mut ignored = Vec::new();
        for &item in op.items() {
            let d = match op.kind {
                OpKind::Read => self.read(op.tx, item),
                OpKind::Write => self.write(op.tx, item),
            };
            match d {
                Decision::Accept { ignored: ig } => ignored.extend(ig),
                Decision::Reject(r) => return Decision::Reject(r),
            }
        }
        Decision::Accept { ignored }
    }

    // ---- multi-version snapshot support ----------------------------------

    /// Freezes the committing writer's vector into a **saturated** version
    /// stamp: every still-undefined element is defined — non-last columns
    /// to `0` (column 0 is never open here: a committing writer was
    /// granted at least one access, which ordered it after `T₀`), the
    /// k-th column to a fresh upper counter draw — and the per-column
    /// maxima are advanced to cover the final vector. A fully defined row
    /// can never gain elements, so the returned clone *is* the writer's
    /// final vector forever: every later comparison against the stamp is
    /// decidable, which is what lets snapshot readers walk version chains
    /// without ever aborting or blocking.
    ///
    /// The fill and its [`TraceEvent::StampFill`] event happen inside the
    /// row's write critical section, so the auditor's replayed vector
    /// agrees with every comparison emitted after this point.
    ///
    /// Call once per committing MV writer, after commit-time validation
    /// granted its writes and before its versions are installed.
    pub fn stamp_commit(&self, tx: TxId) -> TsVec {
        let k = self.opts.k;
        let slot = self.slot_expect(tx);
        let mut row = slot.write();
        let v = vec_of_mut(&mut row, tx);
        let mut changes: Vec<Change> = Vec::new();
        for m in 0..k {
            if !v.is_defined(m) {
                let value = if m == k - 1 { self.counters.fresh_upper() } else { 0 };
                v.define(m, value);
                changes.push((tx, m, value));
            }
        }
        for m in 0..k {
            let value = v.get(m).expect("saturated above");
            self.col_max[m].fetch_max(value, Ordering::SeqCst);
        }
        let stamp = v.clone();
        if !changes.is_empty() {
            self.trace.emit(|| TraceEvent::StampFill { tx, changes: changes.into() });
        }
        stamp
    }

    /// Schedules a snapshot (read-only transaction) read of `item` — the
    /// MV-MT(k) serving path. Unlike [`read`](Self::read) this never
    /// rejects: when the reader cannot be ordered after the current
    /// holders it is served from an older version instead
    /// ([`SnapshotRead::Older`]).
    ///
    /// Consistency of a multi-item snapshot rests on one invariant:
    /// *after this call returns, every future writer of `item` is
    /// necessarily ordered above the reader* (or refused, aborting
    /// without installing a version). In the `Current` arm the reader
    /// becomes the `RT` holder, so future writers order directly above
    /// it. In the `Older` arm the reader is decided below one of the
    /// current holders; holders only advance upward, so every future
    /// writer orders above that holder and — decided `<` being
    /// transitive over write-once vectors — above the reader. Either
    /// way the version the reader selects stays the newest one below it
    /// forever, which is what makes the cut a fixed point of the final
    /// vector order.
    ///
    /// The reader's own elements are *boosted* (defined above
    /// `col_max`, see [`set_less_with`](Self::set_less_with)), so it is
    /// never decided below any stamp published before its snapshot
    /// began — the chain walk of the `Older` arm therefore always
    /// terminates at or above the GC pivot (DESIGN.md §8).
    /// The caller must have [`begin`](Self::begin)-ed `tx` — the reader's
    /// row is allocated up front so this path stays allocation-free.
    pub fn snapshot_read(&self, tx: TxId, item: ItemId) -> SnapshotRead {
        let (shard, local) = self.shard_of(item);
        let mut s = lock(shard);
        let pair = s.pair(local);
        let HolderPair { rt, wt } = pair;
        // Like `pick`, but remember whether the holders' mutual order is
        // *decided*: decided `<` is stable over write-once vectors, so
        // `smaller < larger < tx` makes the second `Set` redundant.
        let (larger, smaller, decided) = if rt == wt {
            (rt, wt, true)
        } else {
            match self.compare_quick(rt, wt) {
                CmpResult::Less { .. } => (wt, rt, true),
                CmpResult::Greater { .. } => (rt, wt, true),
                _ => (rt, wt, false),
            }
        };
        // Reader rule (lines 9–10) first: when the larger holder is still
        // *live* — typically a transfer holding `RT` through its think
        // window, or another reader mid-scan — escalating above it would
        // steal the slot it must revalidate against. Slip below it
        // instead (see [`slip_below_live`](Self::slip_below_live)): the
        // holder's position and the `RT` slot stay untouched, so a
        // pending writer commits undisturbed no matter how many readers
        // arrive during its think window.
        if self.slip_below_live(tx, larger) {
            if larger != wt && matches!(self.set_less_with(smaller, tx, true), SetOutcome::Ok) {
                // Between `WT` and a live `RT`: the current version is
                // the newest one below the reader — an invisible Current
                // read, shielded by the larger holder (every future
                // writer orders above it, hence transitively above us).
                self.emit_access(tx, item, OpKind::Read, rt, wt, AccessOutcome::GrantedInvisible);
                return SnapshotRead::Current;
            }
            // Below the newest version's writer: serve a predecessor.
            self.emit_access(tx, item, OpKind::Read, rt, wt, AccessOutcome::GrantedStale);
            return SnapshotRead::Older;
        }
        let ordered = match self.set_less_with(larger, tx, true) {
            SetOutcome::Ok => {
                decided || matches!(self.set_less_with(smaller, tx, true), SetOutcome::Ok)
            }
            SetOutcome::Refused { .. } => false,
        };
        if ordered {
            self.emit_access(tx, item, OpKind::Read, rt, wt, AccessOutcome::Granted);
            self.set_rt_locked(&mut s, local, tx); // line 7
            SnapshotRead::Current
        } else {
            self.emit_access(tx, item, OpKind::Read, rt, wt, AccessOutcome::GrantedStale);
            SnapshotRead::Older
        }
    }

    /// The line 9–10 reader rule (remark after Theorem 3) on the
    /// snapshot path: order
    /// `tx` strictly *below* a live holder instead of escalating above
    /// it. Returns `true` iff `TS(tx) < TS(holder)` is decided on exit.
    ///
    /// Escalating above a holder that is still running steals the item's
    /// `RT` slot from under it: a transfer in its think window finds a
    /// boosted reader above it at validation, restarts, and meets the
    /// next reader's boost on the retry — under a read-heavy hotspot
    /// that starvation spiral is unbounded, because snapshot readers
    /// arrive faster than the writer can revalidate. Slipping below the
    /// live holder leaves its position untouched; the reader serves the
    /// newest version below itself as always and is *shielded* by the
    /// holder — every future writer orders above the item's holders and,
    /// decided `<` being transitive over write-once vectors, above the
    /// reader, so the read stays protected without an `RT` update.
    ///
    /// The slipped element is defined in the open window strictly
    /// between the published column maximum and the holder's element:
    /// the boost invariant (no reader element at or below a commit stamp
    /// published before it was defined) survives, so the chain-walk /
    /// GC-pivot argument of DESIGN.md §8 is untouched. When the window
    /// is closed, the holder's deciding element is still undefined, the
    /// order is already decided the other way, or the holder has
    /// finished (an inert anchor nobody revalidates against — escalating
    /// over it starves no one), returns `false` and the caller escalates
    /// as before.
    ///
    /// The holder must be a current `RT`/`WT` entry of a shard the
    /// caller holds locked: that reference pins its row against
    /// reclamation while we look at it.
    fn slip_below_live(&self, tx: TxId, holder: TxId) -> bool {
        if holder == tx || holder.is_virtual() {
            return false;
        }
        let slot = self.slot_expect(holder);
        if slot.finished().load(Ordering::SeqCst) {
            return false;
        }
        if let Some(cmp) = self.cache_get(tx, holder) {
            return matches!(cmp, CmpResult::Less { .. });
        }
        let epoch = self.cache.epoch();
        let k = self.opts.k;
        let (memo, slipped) = {
            let (mut gtx, gh) = self.write_pair(tx, holder);
            let cmp = SimdComparator::compare(vec_of(&gtx, tx), vec_of(&gh, holder));
            match cmp {
                CmpResult::Less { .. } => (Some(cmp), true),
                CmpResult::Greater { .. } => (Some(cmp), false),
                CmpResult::LeftUndefined { at } if at < k - 1 => {
                    // `tx` open at `at`, holder defined. The last column
                    // is excluded: its globally-unique counter values
                    // cannot be re-derived from a bound without risking
                    // a value at or below the column maximum.
                    let bound = vec_of(&gh, holder).get(at).expect("defined by case");
                    let floor = self.col_max[at].load(Ordering::SeqCst);
                    if bound <= floor + 1 {
                        (None, false) // window closed: escalate instead
                    } else {
                        let value = bound - 1;
                        self.emit_compare(tx, holder, cmp, false);
                        vec_of_mut(&mut gtx, tx).define(at, value);
                        self.emit_edge(tx, holder, || SetEdgeOutcome::Encoded {
                            changes: EncodedChanges::one((tx, at, value)),
                        });
                        (Some(CmpResult::Less { at }), true)
                    }
                }
                _ => (None, false),
            }
        };
        if let Some(cmp) = memo {
            self.cache_put(epoch, tx, holder, cmp);
        }
        slipped
    }

    /// The MV-MT(k) gap test for one chain version: orders the snapshot
    /// reader `reader` (its row vector) against a saturated version
    /// stamp. Returns `true` when the reader sits *after* the stamp's
    /// writer (the version is visible), `false` when it sits *before*
    /// (the walk must descend to an older version). Never refuses or
    /// blocks: a saturated stamp can only compare `Less`, `Greater` or
    /// `RightUndefined`, and the open-element case is resolved by
    /// defining the reader's element above both the per-column maximum
    /// and the stamp — which also orders the reader after every other
    /// stamp published before the define (the GC monotonicity
    /// invariant, DESIGN.md §8).
    ///
    /// Allocation-free for `k ≤ INLINE_K` with tracing disabled.
    pub fn snapshot_order_after(&self, reader: TxId, stamp: &TsVec, stamp_writer: TxId) -> bool {
        let k = self.opts.k;
        let slot = self.slot_expect(reader);
        // Fast path: the reader's existing elements usually already
        // decide the order, needing only the row's read lock.
        {
            let row = slot.read();
            match SimdComparator::compare(stamp, vec_of(&row, reader)) {
                CmpResult::Less { .. } => return true,
                CmpResult::Greater { .. } => return false,
                _ => {}
            }
        }
        let mut row = slot.write();
        loop {
            match SimdComparator::compare(stamp, vec_of(&row, reader)) {
                CmpResult::Less { .. } => return true,
                CmpResult::Greater { .. } => return false,
                CmpResult::RightUndefined { at } => {
                    let bound = self.col_max[at]
                        .load(Ordering::SeqCst)
                        .max(stamp.get(at).expect("stamp is saturated"));
                    let value = if at == k - 1 {
                        // Globally distinct, so `Identical` stays
                        // impossible even for a fully defined reader.
                        self.counters.fresh_upper_above(bound)
                    } else {
                        bound + 1
                    };
                    vec_of_mut(&mut row, reader).define(at, value);
                    self.emit_edge(stamp_writer, reader, || SetEdgeOutcome::Encoded {
                        changes: EncodedChanges::one((reader, at, value)),
                    });
                }
                other => {
                    debug_assert!(false, "unsaturated stamp in snapshot walk: {other:?}");
                    return true;
                }
            }
        }
    }

    /// ISSUE 8: the batched newest-below-reader scan over an MV chain
    /// segment. `stamp_of(i)` yields version `i`'s saturated commit
    /// stamp, oldest first; returns the index of the newest version the
    /// reader sits after, or `None` when even the oldest is newer.
    ///
    /// One batched SIMD compare of the reader's vector against the whole
    /// segment replaces the per-version lock/compare round-trips of
    /// [`snapshot_order_after`](Self::snapshot_order_after): the reader's
    /// row read lock is taken once, every decision comes back in one
    /// scratch pass, and only a version whose order is still *open*
    /// (its stamp column is undefined on the reader's side) falls back
    /// to the per-version define loop — after the batch guard is
    /// released, so the fallback's write lock nests as before.
    ///
    /// The batched decisions stay valid after the guard drops for the
    /// same reason the order cache is sound: decided orders are
    /// write-once, and the stamps are saturated (immutable).
    pub fn snapshot_newest_visible<'a>(
        &self,
        reader: TxId,
        n: usize,
        stamp_of: impl Fn(usize) -> &'a TsVec,
        writer_of: impl Fn(usize) -> TxId,
    ) -> Option<usize> {
        if n == 0 {
            return None;
        }
        let slot = self.slot_expect(reader);
        let mut open = None;
        let found = BATCH_SCRATCH.with(|scratch| {
            let mut scratch = scratch.borrow_mut();
            let decisions = {
                let row = slot.read();
                scratch.compare_one_vs_many(vec_of(&row, reader), n, &stamp_of)
            };
            // Newest (highest index) first: the first version the reader
            // is ordered after is the visible one.
            for i in (0..n).rev() {
                match decisions[i] {
                    CmpResult::Greater { .. } => return Some(i),
                    CmpResult::Less { .. } => {}
                    _ => {
                        // Open order: resolve below via the define loop
                        // (needs the write lock, so outside this borrow).
                        open = Some(i);
                        return None;
                    }
                }
            }
            None
        });
        self.note_batch(true, n);
        if let Some(i) = found {
            return Some(i);
        }
        // Continue the walk from the first open version downward with the
        // per-version gap test; versions above it already compared Less.
        let start = open?;
        (0..=start).rev().find(|&i| self.snapshot_order_after(reader, stamp_of(i), writer_of(i)))
    }

    // ---- inspection ------------------------------------------------------

    /// Runs `f` on a borrow of `TS(tx)` (or `None` if the transaction has
    /// no live row) under the slot's read lock — the allocation-free form
    /// of [`ts`](Self::ts) for metrics and trace paths that only need a
    /// look.
    pub fn with_ts<R>(&self, tx: TxId, f: impl FnOnce(Option<&TsVec>) -> R) -> R {
        match self.rows.slot(tx.index()) {
            Some(slot) => {
                let row = slot.read();
                f(row.as_ref())
            }
            None => f(None),
        }
    }

    /// `TS(tx)` (a clone), if the transaction has a live row.
    pub fn ts(&self, tx: TxId) -> Option<TsVec> {
        self.with_ts(tx, |v| v.cloned())
    }

    /// Whether `TS(a) < TS(b)` under Definition 6 (cache-accelerated).
    pub fn is_less(&self, a: TxId, b: TxId) -> bool {
        if a == b {
            return false;
        }
        matches!(self.compare_quick(a, b), CmpResult::Less { .. })
    }

    /// `RT(item)`.
    pub fn rt(&self, item: ItemId) -> TxId {
        let (shard, local) = self.shard_of(item);
        lock(shard).pair(local).rt
    }

    /// `WT(item)`.
    pub fn wt(&self, item: ItemId) -> TxId {
        let (shard, local) = self.shard_of(item);
        lock(shard).pair(local).wt
    }

    /// Number of `RT`/`WT` entries naming `tx` (0 for `T₀` and reclaimed
    /// rows — `T₀`'s references are not tracked; it is never reclaimed).
    pub fn ref_count(&self, tx: TxId) -> u32 {
        self.rows.slot(tx.index()).map_or(0, |s| s.refs().load(Ordering::SeqCst))
    }

    /// Number of live vector rows (including `T₀`).
    pub fn live_rows(&self) -> usize {
        self.rows.iter_slots().filter(|(_, s)| s.read().is_some()).count()
    }

    /// Number of row-table spine chunks currently materialized
    /// (telemetry gauge for the scheduler's memory footprint).
    pub fn resident_row_chunks(&self) -> usize {
        self.rows.resident_chunks()
    }

    /// A serial order consistent with the final vectors: the given
    /// transactions (all of which must have live rows) sorted by the total
    /// key `(defined < undefined, value)` per column — a linear extension
    /// of the strict vector order, cf.
    /// [`TimestampTable::serial_order`](crate::TimestampTable::serial_order).
    pub fn serial_order(&self, txns: &[TxId]) -> Vec<TxId> {
        let k = self.opts.k;
        // Snapshot the vectors slot by slot: decided prefixes are stable
        // (write-once), so any interleaving of concurrent defines yields a
        // valid linear extension of the orders decided so far.
        let mut pairs: Vec<(TxId, TsVec)> = txns
            .iter()
            .map(|&t| (t, self.ts(t).unwrap_or_else(|| panic!("no live timestamp vector for {t}"))))
            .collect();
        let key_at = |v: &TsVec, m: usize| match v.get(m) {
            Some(x) => (0u8, x),
            None => (1u8, 0),
        };
        pairs.sort_by(|(_, va), (_, vb)| {
            (0..k).map(|m| key_at(va, m)).cmp((0..k).map(|m| key_at(vb, m)))
        });
        // The O(n²) pairwise verification the sort replaced; debug-only.
        // Goes through the cache-accelerated is_less on purpose — it
        // cross-checks the cache against the final vectors too.
        debug_assert!(
            pairs
                .iter()
                .enumerate()
                .all(|(p, (a, _))| { pairs[p + 1..].iter().all(|(b, _)| !self.is_less(*b, *a)) }),
            "sorted order contradicts the strict vector order"
        );
        pairs.into_iter().map(|(t, _)| t).collect()
    }
}

/// Mutable form of [`vec_of`].
fn vec_of_mut(guard: &mut Option<TsVec>, tx: TxId) -> &mut TsVec {
    guard.as_mut().unwrap_or_else(|| panic!("no live timestamp vector for {tx}"))
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicUsize, Ordering};

    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    use mdts_model::{Log, MultiStepConfig};

    use super::*;
    use crate::mtk::MtScheduler;

    #[test]
    fn first_op_defines_first_element() {
        let s = SharedMtScheduler::with_k(2);
        assert!(s.read(TxId(1), ItemId(0)).is_accept());
        assert_eq!(s.ts(TxId(1)).unwrap().to_string(), "<1,*>");
        assert_eq!(s.rt(ItemId(0)), TxId(1));
    }

    #[test]
    fn conflicting_write_after_later_writer_rejected() {
        let s = SharedMtScheduler::with_k(2);
        assert!(s.write(TxId(1), ItemId(0)).is_accept());
        assert!(s.write(TxId(2), ItemId(0)).is_accept());
        let d = s.write(TxId(1), ItemId(0));
        assert_eq!(
            d,
            Decision::Reject(Reject { tx: TxId(1), against: TxId(2), item: ItemId(0), column: 0 })
        );
    }

    /// Lines 9–10: a read refused against a later reader proceeds when
    /// already ordered after the latest writer — without becoming `RT`.
    #[test]
    fn reader_rule_lets_read_slip_before_later_reader() {
        let run = |reader_rule: bool| {
            let opts = MtOptions { reader_rule, ..MtOptions::new(2) };
            let s = SharedMtScheduler::new(opts);
            let (x, y) = (ItemId(0), ItemId(1));
            // Pre-order T1 < T2 < T3 on y.
            assert!(s.write(TxId(1), y).is_accept());
            assert!(s.write(TxId(2), y).is_accept());
            assert!(s.write(TxId(3), y).is_accept());
            // x: WT = T1, RT = T3.
            assert!(s.write(TxId(1), x).is_accept());
            assert!(s.read(TxId(3), x).is_accept());
            (s.read(TxId(2), x), s.rt(x))
        };
        let (d, rt) = run(true);
        assert_eq!(d, Decision::accept(), "ordered after WT=T1, slips before RT=T3");
        assert_eq!(rt, TxId(3), "the slipped read must not displace RT");
        let (d, _) = run(false);
        assert!(!d.is_accept(), "without lines 9-10 the read is rejected");
    }

    /// III-D-6c: a write ordered after all readers but before the newer
    /// writer is ignored, not aborted.
    #[test]
    fn thomas_write_rule_ignores_obsolete_write() {
        let run = |thomas: bool| {
            let opts = MtOptions { thomas_write_rule: thomas, ..MtOptions::new(2) };
            let s = SharedMtScheduler::new(opts);
            let (x, y) = (ItemId(0), ItemId(1));
            assert!(s.write(TxId(1), y).is_accept());
            assert!(s.write(TxId(2), y).is_accept()); // T1 < T2
            assert!(s.write(TxId(2), x).is_accept()); // WT(x) = T2
            (s.write(TxId(1), x), s.wt(x))
        };
        let (d, wt) = run(true);
        assert_eq!(d, Decision::Accept { ignored: vec![ItemId(0)] });
        assert_eq!(wt, TxId(2), "the ignored write must not displace WT");
        let (d, _) = run(false);
        assert!(!d.is_accept());
    }

    /// III-D-4: a rejected transaction restarts above its blocker's first
    /// element and cannot hit the same refusal again.
    #[test]
    fn starvation_flush_restarts_above_blocker() {
        let opts = MtOptions { starvation_flush: true, ..MtOptions::new(2) };
        let s = SharedMtScheduler::new(opts);
        let (x, y) = (ItemId(0), ItemId(1));
        assert!(s.write(TxId(2), y).is_accept()); // TS(2) = <1,*>
        assert!(s.write(TxId(3), y).is_accept()); // TS(3) = <2,*>
        assert!(s.write(TxId(3), x).is_accept()); // WT(x) = T3
        assert!(!s.write(TxId(2), x).is_accept()); // refused against T3
        s.abort(TxId(2));
        s.begin_restarted(TxId(4), TxId(2));
        assert_eq!(s.ts(TxId(4)).unwrap(), TsVec::from_elems(&[Some(3), None]));
        assert!(s.write(TxId(4), x).is_accept(), "the restart clears the blocker");
    }

    /// III-D-6b: commit alone cannot reclaim a row that is still `RT`/`WT`
    /// somewhere; the displacement drops it in O(1).
    #[test]
    fn commit_reclaims_on_displacement() {
        let s = SharedMtScheduler::with_k(2);
        let x = ItemId(0);
        assert!(s.write(TxId(1), x).is_accept());
        assert_eq!(s.ref_count(TxId(1)), 1);
        assert!(!s.commit(TxId(1)), "still WT(x): not reclaimable yet");
        assert!(s.ts(TxId(1)).is_some());
        assert!(s.write(TxId(2), x).is_accept()); // displaces WT(x)
        assert_eq!(s.ts(TxId(1)), None, "displacement reclaimed the row");
        // An unreferenced committer reclaims immediately.
        s.begin(TxId(3));
        assert!(s.commit(TxId(3)));
        assert_eq!(s.ts(TxId(3)), None);
    }

    /// `with_ts` exposes the row under the slot lock without cloning, and
    /// handles never-begun and reclaimed transactions as `None`.
    #[test]
    fn with_ts_borrows_the_row() {
        let s = SharedMtScheduler::with_k(2);
        assert!(s.with_ts(TxId(9), |v| v.is_none()), "never begun");
        assert!(s.write(TxId(1), ItemId(0)).is_accept());
        let first = s.with_ts(TxId(1), |v| v.unwrap().get(0));
        assert_eq!(first, Some(1));
        assert!(s.write(TxId(2), ItemId(0)).is_accept());
        s.commit(TxId(1)); // displaced → reclaimed
        assert!(s.with_ts(TxId(1), |v| v.is_none()), "reclaimed row reads as None");
    }

    /// Repeat consults of a decided order are served by the write-once
    /// cache, and reusing a reclaimed id flushes it.
    #[test]
    fn slot_reuse_invalidates_cached_orders() {
        let s = SharedMtScheduler::with_k(2);
        let x = ItemId(0);
        assert!(s.write(TxId(1), x).is_accept());
        assert!(s.write(TxId(2), x).is_accept()); // encodes T1 < T2
        assert!(s.order(TxId(1), TxId(2)), "repeat consult");
        let stats = s.order_cache_stats();
        assert!(stats.hits > 0, "the repeat consult must hit the cache: {stats:?}");
        s.commit(TxId(1)); // unreferenced (displaced) → reclaimed
        assert_eq!(s.ts(TxId(1)), None);
        s.begin(TxId(1)); // id reuse: must flush the cache
        assert!(s.order_cache_stats().invalidations > 0, "reuse must invalidate");
        assert!(
            s.order(TxId(2), TxId(1)),
            "fresh incarnation is unordered; the stale T1 < T2 must not refuse"
        );
    }

    fn run_both(log: &Log, opts: MtOptions) {
        let mut seq = MtScheduler::new(opts);
        let shr = SharedMtScheduler::new(opts);
        for (pos, op) in log.ops().iter().enumerate() {
            let d = seq.process(op);
            let ds = shr.process(op);
            assert_eq!(d, ds, "decision differs at op {pos} of {log}");
            if !d.is_accept() {
                break;
            }
        }
        // Same decisions must leave byte-identical vectors behind.
        for tx in log.transactions() {
            assert_eq!(seq.table().ts(tx).cloned(), shr.ts(tx), "vectors differ for {tx} on {log}");
        }
    }

    fn arb_log() -> impl Strategy<Value = Log> {
        (2usize..7, 2usize..8, 0.2f64..0.8, any::<u64>()).prop_map(
            |(n_txns, n_items, p_write, seed)| {
                let mut rng = StdRng::seed_from_u64(seed);
                MultiStepConfig {
                    n_txns,
                    n_items,
                    p_write,
                    min_ops: 1,
                    max_ops: 4,
                    ..Default::default()
                }
                .generate(&mut rng)
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Driven single-threaded, the concurrent scheduler is
        /// operation-for-operation identical to Algorithm 1's sequential
        /// implementation — same decisions, same final vectors.
        #[test]
        fn sequential_equivalence(log in arb_log(), k in 1usize..6) {
            run_both(&log, MtOptions::new(k));
        }

        /// ... with the refinement options on as well.
        #[test]
        fn sequential_equivalence_with_refinements(log in arb_log(), k in 2usize..5) {
            let opts = MtOptions {
                relaxed_reader_rule: true,
                thomas_write_rule: true,
                starvation_flush: true,
                ..MtOptions::new(k)
            };
            run_both(&log, opts);
        }

        /// ... and with the order cache disabled, pinning that the cache
        /// changes no decision (both sides off ⇒ both sides pure).
        #[test]
        fn sequential_equivalence_cache_off(log in arb_log(), k in 1usize..6) {
            run_both(&log, MtOptions { order_cache: false, ..MtOptions::new(k) });
        }
    }

    /// Disjoint working sets scale without interference: every operation
    /// accepts, and the k-th-column values drawn concurrently stay
    /// distinct.
    #[test]
    fn concurrent_disjoint_transactions_all_accept() {
        const THREADS: u32 = 8;
        const TXNS_PER_THREAD: u32 = 50;
        let s = SharedMtScheduler::with_k(3);
        let rejected = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let s = &s;
                let rejected = &rejected;
                scope.spawn(move || {
                    for n in 0..TXNS_PER_THREAD {
                        let tx = TxId(1 + t * TXNS_PER_THREAD + n);
                        let item = ItemId(t); // one private item per thread
                        s.begin(tx);
                        let ok = s.read(tx, item).is_accept() && s.write(tx, item).is_accept();
                        if ok {
                            s.commit(tx);
                        } else {
                            rejected.fetch_add(1, Ordering::Relaxed);
                            s.abort(tx);
                        }
                    }
                });
            }
        });
        assert_eq!(rejected.load(Ordering::Relaxed), 0, "disjoint items never conflict");
        // Each item's final RT/WT pin at most two rows per thread; all
        // other committed rows were reclaimed on displacement.
        assert!(
            s.live_rows() <= 1 + 2 * THREADS as usize,
            "reclamation fell behind: {} live rows",
            s.live_rows()
        );
    }

    /// Contended smoke test: threads hammer a tiny hot set; whatever
    /// commits must leave mutually consistent vectors (the debug verify in
    /// `serial_order` cross-checks the linear extension quadratically).
    #[test]
    fn concurrent_hotspot_is_consistent() {
        const THREADS: u32 = 8;
        const TXNS_PER_THREAD: u32 = 40;
        let s = SharedMtScheduler::with_shards(MtOptions::new(4), 4);
        let committed = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let s = &s;
                let committed = &committed;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0xC0FFEE + t as u64);
                    for n in 0..TXNS_PER_THREAD {
                        let tx = TxId(1 + t * TXNS_PER_THREAD + n);
                        s.begin(tx);
                        let mut ok = true;
                        for _ in 0..3 {
                            let item = ItemId(rng.gen_range(0u32..3));
                            let d = if rng.gen_bool(0.5) {
                                s.read(tx, item)
                            } else {
                                s.write(tx, item)
                            };
                            if !d.is_accept() {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            lock(committed).push(tx);
                        }
                    }
                });
            }
        });
        // Commit nothing until the end so every vector stays live for the
        // final cross-check; then the sort's debug_assert verifies no pair
        // contradicts the strict order.
        let committed = lock(&committed);
        assert!(!committed.is_empty(), "some transactions must get through");
        let order = s.serial_order(&committed);
        assert_eq!(order.len(), committed.len());
        for &tx in committed.iter() {
            s.commit(tx);
        }
    }

    /// The hotspot workload again, now traced: the independent auditor
    /// replays the merged event sequence from 8 threads and re-confirms
    /// every comparison, encode, and accept/reject decision, plus the
    /// committed prefix being in TO(k). Cache-served comparisons carry the
    /// `cached` flag and must agree with the auditor's replayed vectors.
    #[test]
    fn concurrent_trace_audits_clean() {
        const THREADS: u32 = 8;
        const TXNS_PER_THREAD: u32 = 40;
        let buffer = mdts_trace::TraceBuffer::unbounded(16);
        let opts = MtOptions { thomas_write_rule: true, ..MtOptions::new(4) };
        let mut s = SharedMtScheduler::with_shards(opts, 4);
        s.attach_trace(mdts_trace::TraceSink::to(&buffer));
        let s = s;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let s = &s;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0xBADC0DE + t as u64);
                    for n in 0..TXNS_PER_THREAD {
                        let tx = TxId(1 + t * TXNS_PER_THREAD + n);
                        s.begin(tx);
                        let mut ok = true;
                        for _ in 0..3 {
                            let item = ItemId(rng.gen_range(0u32..3));
                            let d = if rng.gen_bool(0.5) {
                                s.read(tx, item)
                            } else {
                                s.write(tx, item)
                            };
                            if !d.is_accept() {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            s.commit(tx);
                        } else {
                            s.abort(tx);
                        }
                    }
                });
            }
        });
        let trace = buffer.snapshot();
        let report = mdts_trace::audit(&trace, 4);
        assert!(report.is_clean(), "{}", report.summary());
        assert!(report.committed > 0, "some transactions must commit");
        assert!(report.decisions > 0 && report.comparisons > 0);
        assert!(report.cached_comparisons > 0, "the hot set must produce cache hits");
        assert_eq!(buffer.dropped(), 0, "unbounded buffer never drops");
    }

    /// Recomputes what the O(#items) reclamation scan would: for every
    /// transaction, the number of `RT`/`WT` entries naming it.
    fn scan_refs(s: &SharedMtScheduler, items: &[ItemId]) -> HashMap<TxId, u32> {
        let mut counts = HashMap::new();
        for &item in items {
            for holder in [s.rt(item), s.wt(item)] {
                if holder != TxId::VIRTUAL {
                    *counts.entry(holder).or_insert(0) += 1;
                }
            }
        }
        counts
    }

    /// The O(1) refcount invariants, checkable at any quiescent point:
    /// the maintained counts equal the scan, every `RT`/`WT` entry names
    /// a live row, and every finished unreferenced row is reclaimed.
    fn check_reclaim_invariants(
        s: &SharedMtScheduler,
        txns: &[TxId],
        items: &[ItemId],
        finished: &std::collections::HashSet<TxId>,
    ) {
        let scan = scan_refs(s, items);
        for (&tx, &n) in &scan {
            assert!(s.ts(tx).is_some(), "{tx} is RT/WT of something but has no row");
            assert_eq!(s.ref_count(tx), n, "refcount of {tx} diverged from the scan");
        }
        for &tx in txns {
            if !scan.contains_key(&tx) {
                assert_eq!(s.ref_count(tx), 0, "{tx} counts references the scan cannot see");
                if finished.contains(&tx) {
                    assert_eq!(s.ts(tx), None, "finished unreferenced {tx} was not reclaimed");
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// III-D-6b: after *every* step of a random schedule with random
        /// interleaved commits and aborts, the O(1) refcounts agree with
        /// the O(#items) scan they replaced, and rows are reclaimed
        /// exactly when finished and unreferenced.
        #[test]
        fn refcount_reclaim_matches_scan(log in arb_log(), k in 1usize..5, seed in any::<u64>()) {
            let opts = MtOptions {
                thomas_write_rule: true,
                starvation_flush: true,
                ..MtOptions::new(k)
            };
            let s = SharedMtScheduler::with_shards(opts, 2);
            let mut rng = StdRng::seed_from_u64(seed);
            let txns = log.transactions();
            let items: Vec<ItemId> = {
                let mut v: Vec<ItemId> =
                    log.ops().iter().flat_map(|op| op.items().iter().copied()).collect();
                v.sort_unstable();
                v.dedup();
                v
            };
            let mut dead = std::collections::HashSet::new();
            let mut finished = std::collections::HashSet::new();
            for op in log.ops() {
                if dead.contains(&op.tx) {
                    continue;
                }
                if s.process(op).is_accept() {
                    if rng.gen_bool(0.2) {
                        s.commit(op.tx);
                        dead.insert(op.tx);
                        finished.insert(op.tx);
                    }
                } else {
                    s.abort(op.tx);
                    dead.insert(op.tx);
                    finished.insert(op.tx);
                }
                check_reclaim_invariants(&s, &txns, &items, &finished);
            }
            for &tx in &txns {
                if !dead.contains(&tx) {
                    if rng.gen_bool(0.5) {
                        s.commit(tx);
                    } else {
                        s.abort(tx);
                    }
                    finished.insert(tx);
                    check_reclaim_invariants(&s, &txns, &items, &finished);
                }
            }
            // Everything is finished: the live rows are T₀ plus exactly
            // the rows still pinned by an RT/WT reference.
            let pinned = scan_refs(&s, &items).len();
            prop_assert_eq!(s.live_rows(), 1 + pinned, "reclamation left orphan rows behind");
        }
    }
}
