//! Golden tests reproducing the paper's worked examples cell by cell:
//! Example 1 (Fig. 1), Example 2 (Fig. 3 + Table I), Example 3 (Table II),
//! and the starvation case (Fig. 5).

use mdts_model::{ItemId, Log, TxId};
use mdts_vector::TsVec;

use crate::mtk::{HotEncoding, MtOptions, MtScheduler, SetEvent};
use crate::recognize::recognize;

fn ts(s: &MtScheduler, i: u32) -> String {
    s.table().ts_expect(TxId(i)).to_string()
}

/// Example 2 / Table I: dependencies a…e encode exactly the table's values.
#[test]
fn table1_example2_vectors() {
    let mut s = MtScheduler::new(MtOptions { record_events: true, ..MtOptions::new(2) });
    let log = Log::parse("R1[x] R2[y] R3[z] W1[y] W1[z]").unwrap();
    assert!(recognize(&mut s, &log).accepted);

    // Resulting vectors row of Table I.
    assert_eq!(ts(&s, 0), "<0,*>");
    assert_eq!(ts(&s, 1), "<1,2>");
    assert_eq!(ts(&s, 2), "<1,1>");
    assert_eq!(ts(&s, 3), "<1,0>");

    // The dependency edges a–e in order, with their encodings.
    let events = s.events();
    let encoded: Vec<&SetEvent> =
        events.iter().filter(|e| matches!(e, SetEvent::Encoded { .. })).collect();
    let expect = [
        // a: T0 → T1 sets TS(1,1) = 1
        (TxId(0), TxId(1), vec![(TxId(1), 0, 1)]),
        // b: T0 → T2
        (TxId(0), TxId(2), vec![(TxId(2), 0, 1)]),
        // c: T0 → T3
        (TxId(0), TxId(3), vec![(TxId(3), 0, 1)]),
        // d: T2 → T1 via R2[y]–W1[y]: both 2nd elements set from ucount
        (TxId(2), TxId(1), vec![(TxId(2), 1, 1), (TxId(1), 1, 2)]),
        // e: T3 → T1 via R3[z]–W1[z]: TS(3,2) = 0 from lcount, to stay
        // distinguishable from TS(2)
        (TxId(3), TxId(1), vec![(TxId(3), 1, 0)]),
    ];
    assert_eq!(encoded.len(), expect.len());
    for (ev, (from, to, changes)) in encoded.iter().zip(&expect) {
        match ev {
            SetEvent::Encoded { from: f, to: t, changes: c } => {
                assert_eq!((f, t), (from, to));
                assert_eq!(c.as_slice(), changes.as_slice());
            }
            _ => unreachable!(),
        }
    }

    // "The log L is equivalent to the serial log T3 T2 T1 or T2 T3 T1."
    let order = s.table().serial_order(&[TxId(1), TxId(2), TxId(3)]).unwrap();
    assert_eq!(*order.last().unwrap(), TxId(1));
}

/// Example 2 again, through the trace layer: the captured trace renders
/// as the paper's Table I layout (op rows, vector columns, encoding
/// notes) and the independent auditor re-confirms every decision.
#[test]
fn table1_example2_trace_renders_and_audits() {
    let buffer = mdts_trace::TraceBuffer::journal();
    let mut s = MtScheduler::with_k(2);
    s.attach_trace(mdts_trace::TraceSink::to(&buffer));
    let log = Log::parse("R1[x] R2[y] R3[z] W1[y] W1[z]").unwrap();
    assert!(recognize(&mut s, &log).accepted);
    for tx in [1, 2, 3] {
        s.commit(TxId(tx));
    }

    let trace = buffer.snapshot();
    let txns = [TxId(0), TxId(1), TxId(2), TxId(3)];
    let table = mdts_trace::render_decision_table(&trace, 2, &txns, &|item| log.item_name(item));
    let lines: Vec<&str> = table.lines().collect();
    // One row per operation of the log, plus header and separator.
    assert_eq!(lines.len(), 2 + log.len(), "{table}");
    // Table I's final row: after W1[z] the vectors read
    // TS(0) = <0,*>, TS(1) = <1,2>, TS(2) = <1,1>, TS(3) = <1,0>.
    let last = lines.last().unwrap();
    assert!(last.starts_with("W1[z]"), "{table}");
    for cell in ["<0,*>", "<1,2>", "<1,1>", "<1,0>"] {
        assert!(last.contains(cell), "missing {cell} in final row:\n{table}");
    }
    // Edge d's double encoding shows up as the W1[y] row's note.
    let w1y = lines.iter().find(|l| l.starts_with("W1[y]")).unwrap();
    assert!(w1y.contains("TS(T2,2):=1"), "{table}");
    assert!(w1y.contains("TS(T1,2):=2"), "{table}");

    let report = mdts_trace::audit(&trace, 2);
    assert!(report.is_clean(), "{}", report.summary());
    assert_eq!(report.committed, 3);
    assert!(report.decisions >= log.len(), "every op decision was audited");
}

/// Example 1 (Section I-A): T2 and T3 share a first element; the 2nd
/// dimension later encodes T2 → T3 with no abort.
#[test]
fn example1_full_run() {
    let mut s = MtScheduler::with_k(2);
    let log = Log::parse("W1[x] W1[y] R3[x] R2[y] R2[y'] W3[y]").unwrap();
    assert!(recognize(&mut s, &log).accepted);
    assert_eq!(ts(&s, 1), "<1,*>");
    assert_eq!(ts(&s, 2), "<2,1>");
    assert_eq!(ts(&s, 3), "<2,2>");
    let order = s.table().serial_order(&[TxId(1), TxId(2), TxId(3)]).unwrap();
    assert_eq!(order, vec![TxId(1), TxId(2), TxId(3)], "serializability order T1 T2 T3");
}

/// Table II / Example 3: the frequently-accessed item x creates a chain
/// T1 = <1,*>, T2 = <2,*>, T3 = <3,*> while the bystander T4 = <1,4> is
/// untouched — the total-order tendency the optimized encoding avoids.
#[test]
fn table2_example3_normal_encoding() {
    // Bystander T4 from earlier activity, with both elements set.
    let mut pre = TsVec::undefined(2);
    pre.define(0, 1);
    pre.define(1, 4);
    let mut s = MtScheduler::with_k(2);
    s.install_vector(TxId(4), pre);
    assert!(s.read(TxId(1), ItemId(0)).is_accept()); // R1[x]
    assert!(s.write(TxId(2), ItemId(0)).is_accept()); // W2[x]
    assert!(s.write(TxId(3), ItemId(0)).is_accept()); // W3[x]
    assert_eq!(ts(&s, 1), "<1,*>");
    assert_eq!(ts(&s, 2), "<2,*>");
    assert_eq!(ts(&s, 3), "<3,*>");
    assert_eq!(ts(&s, 4), "<1,4>", "T4 unchanged, but now totally ordered vs T2, T3");
}

/// Section III-D-5: the optimized right-end encoding keeps T2 unordered
/// with respect to vectors that shared T1's prefix.
#[test]
fn optimized_encoding_preserves_partial_order() {
    let opts = MtOptions { hot_encoding: Some(HotEncoding { threshold: 1 }), ..MtOptions::new(4) };
    let mut s = MtScheduler::new(opts);
    let mut t1 = TsVec::undefined(4);
    t1.define(0, 1);
    t1.define(1, 3);
    s.install_vector(TxId(1), t1);
    // A bystander that shares the prefix <1,3,…>.
    let mut t9 = TsVec::undefined(4);
    t9.define(0, 1);
    t9.define(1, 3);
    s.install_vector(TxId(9), t9);
    s.table_mut().set_wt(ItemId(0), TxId(1));

    assert!(s.write(TxId(2), ItemId(0)).is_accept());
    assert_eq!(ts(&s, 1), "<1,3,1,*>");
    assert_eq!(ts(&s, 2), "<1,3,2,*>");
    // T9 and T2 remain unordered — with the normal encoding T2 = <2,*,*,*>
    // would have been totally ordered after T9 = <1,3,*,*>.
    assert!(matches!(
        s.table().compare(TxId(9), TxId(2)),
        mdts_vector::CmpResult::LeftUndefined { at: 2 }
    ));
}

/// Fig. 5 starvation: without the fix the restart re-derives the same
/// timestamps and aborts again, forever; with the fix it completes.
#[test]
fn starvation_loop_and_fix() {
    let log = Log::parse("W1[x] W2[x] R3[y] W3[x]").unwrap();

    // Without the fix: three identical abort cycles.
    let mut s = MtScheduler::with_k(2);
    for (pos, op) in log.ops().iter().enumerate().take(3) {
        assert!(s.process(op).is_accept(), "op {pos}");
    }
    for _round in 0..3 {
        assert!(!s.process(log.op(3)).is_accept());
        s.abort(TxId(3));
        s.begin_restarted(TxId(3), TxId(3));
        assert!(s.process(log.op(2)).is_accept(), "re-read of y");
    }

    // With the fix: one abort, then done.
    let mut s = MtScheduler::new(MtOptions { starvation_flush: true, ..MtOptions::new(2) });
    for op in log.ops().iter().take(3) {
        assert!(s.process(op).is_accept());
    }
    assert!(!s.process(log.op(3)).is_accept());
    s.abort(TxId(3));
    s.begin_restarted(TxId(3), TxId(3));
    assert_eq!(ts(&s, 3), "<3,*>", "TS(3) flushed to <TS(2,1)+1, *>");
    assert!(s.process(log.op(2)).is_accept());
    assert!(s.process(log.op(3)).is_accept(), "restart runs to completion");
}
