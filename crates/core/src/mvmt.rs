//! MV-MT(k): the paper's extension idea III-D-6d realized — "Reed proposed
//! a multiple version concurrency control mechanism using single-valued
//! timestamps. The idea can be extended to timestamp vectors."
//!
//! Writes append versions to a per-item chain. Successive writers of one
//! item are always strictly ordered by MT(k)'s own rules, so the chain is
//! totally ordered even though the global vector order is partial. A read
//! by `T_i` walks the chain from the newest version down and takes the
//! first version `v` (written by `w`, with successor writer `s`) such that
//! `TS(w) < TS(i)` and `TS(i) < TS(s)` hold or can be *encoded* — slotting
//! the reader into the gap between two writers. The floor version belongs
//! to `T₀`, so **reads never abort**; only writes can be rejected (they
//! must be orderable after the newest version's writer and readers).
//!
//! The result is one-copy serializable: the final vector order is a serial
//! order under which every read observes exactly the version it was
//! served — the `mv_props` tests check this reads-from equality on random
//! logs.

use std::collections::BTreeMap;

use mdts_model::{ItemId, Log, OpKind, TxId};

use crate::mtk::{MtOptions, MtScheduler};

/// One version of an item (scheduling view: writers and their readers).
#[derive(Clone, Debug)]
struct MvVersion {
    writer: TxId,
    readers: Vec<TxId>,
}

/// The multiversion MT(k) scheduler.
#[derive(Clone, Debug)]
pub struct MvMtScheduler {
    /// The vector machinery (tables, `Set`, counters). The reader rule is
    /// irrelevant here — version selection replaces it.
    inner: MtScheduler,
    chains: BTreeMap<ItemId, Vec<MvVersion>>,
}

impl MvMtScheduler {
    /// MV-MT(k) with vector dimension `k`.
    pub fn new(k: usize) -> Self {
        MvMtScheduler {
            inner: MtScheduler::new(MtOptions::for_composite(k)),
            chains: BTreeMap::new(),
        }
    }

    /// The underlying vector scheduler (for table access in tests).
    pub fn inner(&self) -> &MtScheduler {
        &self.inner
    }

    fn chain(&mut self, item: ItemId) -> &mut Vec<MvVersion> {
        self.chains
            .entry(item)
            .or_insert_with(|| vec![MvVersion { writer: TxId::VIRTUAL, readers: Vec::new() }])
    }

    /// Number of versions currently kept for `item` (incl. the floor).
    pub fn version_count(&self, item: ItemId) -> usize {
        self.chains.get(&item).map(Vec::len).unwrap_or(1)
    }

    /// Serves a read: returns the writer whose version `tx` observes.
    /// Never fails.
    pub fn read(&mut self, tx: TxId, item: ItemId) -> TxId {
        self.inner.begin(tx);
        self.chain(item); // materialize the floor
        let n = self.chains[&item].len();
        for idx in (0..n).rev() {
            let writer = self.chains[&item][idx].writer;
            let successor = (idx + 1 < n).then(|| self.chains[&item][idx + 1].writer);
            // Order after this version's writer…
            if !self.inner.order(writer, tx) {
                continue; // writer is after tx: version too new
            }
            // …and before the successor's writer (vacuous for the newest).
            if let Some(s) = successor {
                if !self.inner.order(tx, s) {
                    // tx is already after the successor; the scan already
                    // rejected the newer versions, so keep descending —
                    // this situation cannot actually occur (tx > s would
                    // have made version idx+1 eligible), but stay safe.
                    continue;
                }
            }
            self.chains.get_mut(&item).expect("chain exists").index_readers(idx, tx);
            return writer;
        }
        unreachable!("the floor version (T0) is always readable");
    }

    /// Schedules a write: `tx`'s version appends to the chain iff `tx` can
    /// be ordered after the newest version's writer and all its readers.
    pub fn write(&mut self, tx: TxId, item: ItemId) -> bool {
        self.inner.begin(tx);
        self.chain(item);
        let newest = self.chains[&item].last().expect("floor exists").clone();
        if newest.writer != tx && !self.inner.order(newest.writer, tx) {
            return false;
        }
        for r in &newest.readers {
            if *r != tx && !self.inner.order(*r, tx) {
                return false;
            }
        }
        if newest.writer == tx {
            return true; // overwrite own newest version in place
        }
        self.chain(item).push(MvVersion { writer: tx, readers: Vec::new() });
        true
    }

    /// Prunes versions no longer reachable by any transaction ordered
    /// before `horizon` — the multiversion analogue of III-D-6b's storage
    /// reclamation. Keeps at least the newest version per item. Returns
    /// versions dropped.
    pub fn prune_before(&mut self, horizon: TxId) -> usize {
        let mut dropped = 0;
        // A version is reclaimable if its *successor's* writer is already
        // ordered before the horizon: no transaction serialized after the
        // horizon can ever be slotted before that successor.
        let items: Vec<ItemId> = self.chains.keys().copied().collect();
        for item in items {
            loop {
                let chain = &self.chains[&item];
                if chain.len() < 2 {
                    break;
                }
                let successor = chain[1].writer;
                let ordered = !successor.is_virtual()
                    && self.inner.table().ts(successor).is_some()
                    && self.inner.table().ts(horizon).is_some()
                    && self.inner.table().is_less(successor, horizon);
                if !ordered {
                    break;
                }
                self.chains.get_mut(&item).expect("exists").remove(0);
                dropped += 1;
            }
        }
        dropped
    }

    /// Log recognition: only writes can fail (`Err(pos)`).
    pub fn recognize(log: &Log) -> Result<(), usize> {
        let mut s = MvMtScheduler::new(2 * log.max_ops_per_txn().max(1) - 1);
        for (pos, op) in log.ops().iter().enumerate() {
            for &item in op.items() {
                match op.kind {
                    OpKind::Read => {
                        let _ = s.read(op.tx, item);
                    }
                    OpKind::Write => {
                        if !s.write(op.tx, item) {
                            return Err(pos);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Convenience boolean form.
    pub fn accepts(log: &Log) -> bool {
        Self::recognize(log).is_ok()
    }

    /// The reads-from relation of the multiversion execution, or `None` if
    /// a write was rejected.
    #[allow(clippy::type_complexity)]
    pub fn reads_from(log: &Log, k: usize) -> Option<(MvMtScheduler, Vec<(TxId, ItemId, TxId)>)> {
        let mut s = MvMtScheduler::new(k);
        let mut out = Vec::new();
        for op in log.ops() {
            for &item in op.items() {
                match op.kind {
                    OpKind::Read => {
                        let from = s.read(op.tx, item);
                        out.push((op.tx, item, from));
                    }
                    OpKind::Write => {
                        if !s.write(op.tx, item) {
                            return None;
                        }
                    }
                }
            }
        }
        Some((s, out))
    }
}

trait IndexReaders {
    fn index_readers(&mut self, idx: usize, tx: TxId);
}

impl IndexReaders for Vec<MvVersion> {
    fn index_readers(&mut self, idx: usize, tx: TxId) {
        let readers = &mut self[idx].readers;
        if !readers.contains(&tx) {
            readers.push(tx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdts_model::MultiStepConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn old_reader_is_served_an_old_version() {
        let mut s = MvMtScheduler::new(3);
        // Order T1 < T2 via y, then both write x.
        assert!(s.write(TxId(1), ItemId(1)));
        assert!(s.write(TxId(2), ItemId(1)));
        assert!(s.write(TxId(1), ItemId(0)));
        assert!(s.write(TxId(2), ItemId(0)));
        // T1 reads x: single-version MT would order T1 after WT(x) = T2 —
        // impossible — and abort. MV-MT serves T1 its own version.
        assert_eq!(s.read(TxId(1), ItemId(0)), TxId(1));
        assert_eq!(s.read(TxId(2), ItemId(0)), TxId(2));
        assert_eq!(s.version_count(ItemId(0)), 3, "floor + two versions");
    }

    #[test]
    fn fresh_reader_slots_between_writers() {
        let mut s = MvMtScheduler::new(3);
        assert!(s.write(TxId(1), ItemId(0)));
        assert!(s.write(TxId(2), ItemId(0)));
        // A fresh T3 reads x: the newest version (T2's) is eligible — T3
        // just gets ordered after T2.
        assert_eq!(s.read(TxId(3), ItemId(0)), TxId(2));
        assert!(s.inner().table().is_less(TxId(2), TxId(3)));
    }

    #[test]
    fn reads_never_abort_writes_may() {
        let mut rng = StdRng::seed_from_u64(41);
        let cfg = MultiStepConfig { n_txns: 5, n_items: 4, ..Default::default() };
        for _ in 0..500 {
            let log = cfg.generate(&mut rng);
            if let Err(pos) = MvMtScheduler::recognize(&log) {
                assert_eq!(log.op(pos).kind, OpKind::Write, "only writes reject: {log}");
            }
        }
    }

    #[test]
    fn mv_mt_accepts_more_than_mt() {
        use crate::recognize::to_k;
        let mut rng = StdRng::seed_from_u64(42);
        let cfg = MultiStepConfig { n_txns: 5, n_items: 4, ..Default::default() };
        let (mut mv, mut sv) = (0u32, 0u32);
        for _ in 0..1500 {
            let log = cfg.generate(&mut rng);
            let k = 2 * log.max_ops_per_txn().max(1) - 1;
            mv += MvMtScheduler::accepts(&log) as u32;
            sv += to_k(&log, k) as u32;
        }
        assert!(mv > sv, "versioning must buy acceptance ({mv} vs {sv})");
    }

    /// One-copy serializability: the final vector order is a serial order
    /// under which every read observes exactly the version it was served.
    #[test]
    fn reads_from_matches_vector_serial_order() {
        let mut rng = StdRng::seed_from_u64(43);
        let cfg = MultiStepConfig { n_txns: 4, n_items: 4, ..Default::default() };
        let mut checked = 0;
        for _ in 0..800 {
            let log = cfg.generate(&mut rng);
            let k = 2 * log.max_ops_per_txn().max(1) - 1;
            let Some((s, rf)) = MvMtScheduler::reads_from(&log, k) else { continue };
            checked += 1;
            let order =
                s.inner().table().serial_order(&log.transactions()).expect("vector order sortable");
            // Serial replay in the vector order.
            let mut last_writer: BTreeMap<ItemId, TxId> = BTreeMap::new();
            let mut serial_first_read: BTreeMap<(TxId, ItemId), TxId> = BTreeMap::new();
            for &tx in &order {
                for op in log.ops().iter().filter(|o| o.tx == tx) {
                    for &item in op.items() {
                        match op.kind {
                            OpKind::Read => {
                                serial_first_read.entry((tx, item)).or_insert_with(|| {
                                    last_writer.get(&item).copied().unwrap_or(TxId::VIRTUAL)
                                });
                            }
                            OpKind::Write => {
                                last_writer.insert(item, tx);
                            }
                        }
                    }
                }
            }
            for (tx, item, from) in rf {
                if let Some(&serial_from) = serial_first_read.get(&(tx, item)) {
                    assert!(
                        from == serial_from || from == tx,
                        "{log}: T{} read {item} from T{}, serial order says T{}",
                        tx.0,
                        from.0,
                        serial_from.0
                    );
                }
            }
        }
        assert!(checked > 100, "too few accepted logs ({checked})");
    }

    #[test]
    fn pruning_keeps_newest_and_counts() {
        let mut s = MvMtScheduler::new(3);
        for t in 1..=4u32 {
            assert!(s.write(TxId(t), ItemId(0)));
        }
        assert_eq!(s.version_count(ItemId(0)), 5);
        // Horizon T4: every version whose successor precedes T4 goes.
        let dropped = s.prune_before(TxId(4));
        assert!(dropped >= 2, "old versions reclaimed ({dropped})");
        assert!(s.version_count(ItemId(0)) >= 1);
        // The newest version must survive for future readers.
        assert_eq!(s.read(TxId(9), ItemId(0)), TxId(4));
    }
}
