//! Facade crate re-exporting the full public API. See README.md.
pub use mdts_baselines as baselines;
pub use mdts_core as core;
pub use mdts_dist as dist;
pub use mdts_engine as engine;
pub use mdts_graph as graph;
pub use mdts_model as model;
pub use mdts_nested as nested;
pub use mdts_storage as storage;
pub use mdts_telemetry as telemetry;
pub use mdts_trace as trace;
pub use mdts_vector as vector;
