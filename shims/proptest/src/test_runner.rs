//! Case runner and configuration.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-`proptest!`-block configuration; only `cases` is supported.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case (from `prop_assert!` and friends).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Runs `config.cases` samples of `case`, panicking on the first failure.
///
/// The RNG seed derives from the test name alone, so a failure reproduces
/// exactly by re-running the same test binary — the printed case index
/// identifies the offending sample.
pub fn run_cases(
    config: ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut StdRng) -> Result<(), TestCaseError>,
) {
    let mut rng = StdRng::seed_from_u64(fnv1a(name.as_bytes()));
    for i in 0..config.cases {
        if let Err(e) = case(&mut rng) {
            panic!("property '{name}' failed at case {i}/{}: {e}", config.cases);
        }
    }
}

/// FNV-1a — stable across runs and platforms, unlike `DefaultHasher`.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_all_cases_on_success() {
        let mut n = 0;
        run_cases(ProptestConfig::with_cases(37), "t", |_| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 37);
    }

    #[test]
    #[should_panic(expected = "failed at case 5")]
    fn stops_and_panics_on_failure() {
        let mut n = 0;
        run_cases(ProptestConfig::default(), "t", |_| {
            if n == 5 {
                return Err(TestCaseError::fail("boom"));
            }
            n += 1;
            Ok(())
        });
    }
}
