//! Collection strategies (`proptest::collection` subset).

use std::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Length specification for [`vec`]: a fixed `usize` or a `Range<usize>`,
/// mirroring real proptest's `SizeRange` conversions.
pub trait IntoSizeRange {
    /// Draws a concrete length.
    fn sample_len(&self, rng: &mut StdRng) -> usize;
}

impl IntoSizeRange for usize {
    fn sample_len(&self, _rng: &mut StdRng) -> usize {
        *self
    }
}

impl IntoSizeRange for Range<usize> {
    fn sample_len(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// Strategy for `Vec`s of fixed or ranged length; see [`vec`].
pub struct VecStrategy<S, L = usize> {
    element: S,
    len: L,
}

/// `collection::vec(element, len)` — a `Vec` of `len` samples, where
/// `len` is a fixed `usize` or a `Range<usize>` drawn per sample.
pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { element, len }
}

impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = self.len.sample_len(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fixed_length_vec() {
        let s = vec(0i64..5, 7);
        let mut rng = StdRng::seed_from_u64(3);
        let v = s.sample(&mut rng);
        assert_eq!(v.len(), 7);
        assert!(v.iter().all(|x| (0..5).contains(x)));
    }
}
