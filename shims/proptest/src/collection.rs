//! Collection strategies (`proptest::collection` subset).

use rand::rngs::StdRng;

use crate::strategy::Strategy;

/// Strategy for `Vec`s of a fixed length; see [`vec`].
pub struct VecStrategy<S> {
    element: S,
    len: usize,
}

/// `collection::vec(element, len)` — a `Vec` of exactly `len` samples.
///
/// Real proptest also accepts length *ranges*; this workspace only uses
/// fixed lengths, so only `usize` is supported.
pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        (0..self.len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fixed_length_vec() {
        let s = vec(0i64..5, 7);
        let mut rng = StdRng::seed_from_u64(3);
        let v = s.sample(&mut rng);
        assert_eq!(v.len(), 7);
        assert!(v.iter().all(|x| (0..5).contains(x)));
    }
}
