//! Offline drop-in for the subset of the `proptest` crate this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal property-testing harness with the same surface:
//! [`strategy::Strategy`] (`prop_map`), range / tuple / [`strategy::any`] /
//! [`collection::vec`] / [`option::weighted`] strategies, the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//! header), and `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from real proptest: inputs are sampled from a seed derived
//! deterministically from the test name (reproducible runs, no persisted
//! regression files), and failing cases are reported but **not shrunk**.

pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// Everything the tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Defines property tests: each `#[test] fn name(pat in strategy, ...)`
/// item becomes a plain test that samples its inputs `cases` times.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            // All parameter strategies fuse into one tuple strategy, sampled
            // per case by reference (strategies need not be Copy/Clone).
            let __strategy = ($($strat,)*);
            $crate::test_runner::run_cases($cfg, stringify!($name), |__rng| {
                let ($($pat,)*) =
                    $crate::strategy::Strategy::sample(&__strategy, __rng);
                let mut __body = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                };
                __body()
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Fails the current property case with a message (early-returns `Err`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current property case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: left == right\n  left: {:?}\n right: {:?}", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: left == right\n  left: {:?}\n right: {:?}\n{}",
                    __l,
                    __r,
                    format!($($fmt)+),
                ),
            ));
        }
    }};
}
