//! The [`Strategy`] trait and primitive strategies.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, Standard};

/// A recipe for generating random values of an associated type.
///
/// Unlike real proptest there is no value tree / shrinking — a strategy is
/// just a sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Derives a strategy producing `f(value)`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Half-open ranges are strategies over their element type.
impl<T> Strategy for Range<T>
where
    Range<T>: SampleRange<T> + Clone,
{
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// Inclusive ranges too (`0.0..=1.0`, `0u64..=u64::MAX`).
impl<T> Strategy for RangeInclusive<T>
where
    RangeInclusive<T>: SampleRange<T> + Clone,
{
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// Strategy over a type's full standard distribution; see [`any`].
pub struct Any<T>(PhantomData<T>);

/// `any::<T>()` — arbitrary values of `T` (full range for integers).
pub fn any<T: Standard>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Standard> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn map_and_tuples_compose() {
        let strat = (0usize..10, -3i64..4).prop_map(|(a, b)| (a as i64) + b);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((-3..13).contains(&v));
        }
    }

    #[test]
    fn any_u64_varies() {
        let mut rng = StdRng::seed_from_u64(6);
        let s = any::<u64>();
        let a = s.sample(&mut rng);
        let b = s.sample(&mut rng);
        assert_ne!(a, b);
    }
}
