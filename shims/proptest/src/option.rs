//! `Option` strategies (`proptest::option` subset).

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Strategy for weighted `Option`s; see [`weighted`].
pub struct WeightedOption<S> {
    p_some: f64,
    inner: S,
}

/// `option::weighted(p, strategy)` — `Some(sample)` with probability `p`,
/// `None` otherwise.
pub fn weighted<S: Strategy>(p_some: f64, inner: S) -> WeightedOption<S> {
    assert!((0.0..=1.0).contains(&p_some), "probability out of range: {p_some}");
    WeightedOption { p_some, inner }
}

impl<S: Strategy> Strategy for WeightedOption<S> {
    type Value = Option<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Option<S::Value> {
        if rng.gen_bool(self.p_some) {
            Some(self.inner.sample(rng))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn weighted_respects_probability() {
        let s = weighted(0.7, 0i64..10);
        let mut rng = StdRng::seed_from_u64(4);
        let somes = (0..10_000).filter(|_| s.sample(&mut rng).is_some()).count();
        assert!((6_400..7_600).contains(&somes), "p=0.7 got {somes}/10000");
    }
}
