//! Offline drop-in for the subset of the `criterion` crate this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal harness with the same API: [`Criterion`],
//! [`BenchmarkGroup`] (`sample_size`, `throughput`, `bench_function`,
//! `bench_with_input`, `finish`), [`Bencher`] (`iter`, `iter_batched`),
//! [`BenchmarkId`], [`Throughput`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! It times with `std::time::Instant`, reports median ns/iter (plus
//! elements/s when a throughput is set) to stdout, and produces no HTML or
//! statistical analysis.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Top-level benchmark driver; one per `criterion_group!` function list.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

/// Identifier of one benchmark within a group: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("scalar", 64)` → `scalar/64`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{function_name}/{parameter}") }
    }

    /// Id consisting of the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Units processed per iteration, for derived rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements (e.g. operations) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup; all variants behave identically
/// here (setup is always outside the timed section).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Fresh input per routine call.
    PerIteration,
    /// Small batches.
    SmallInput,
    /// Large batches.
    LargeInput,
}

/// A named set of related benchmarks sharing sample settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), sample_size: 20, throughput: None }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let id = id.into();
        let mut group = self.benchmark_group("");
        group.bench_function(id, |b| f(b));
        group.finish();
    }
}

impl BenchmarkGroup<'_> {
    /// Number of measurement samples per benchmark (default 20).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        self.report(&id, &b);
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        self.report(&id, &b);
    }

    /// Ends the group (reporting already happened per benchmark).
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let full = if self.name.is_empty() {
            id.label.clone()
        } else {
            format!("{}/{}", self.name, id.label)
        };
        let mut line = format!("{full:<48} time: {}", fmt_ns(b.median_ns));
        if let Some(t) = self.throughput {
            let (units, label) = match t {
                Throughput::Elements(n) => (n, "elem/s"),
                Throughput::Bytes(n) => (n, "B/s"),
            };
            if b.median_ns > 0.0 {
                let rate = units as f64 * 1e9 / b.median_ns;
                let _ = write!(line, "  thrpt: {rate:.3e} {label}");
            }
        }
        println!("{line}");
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs/iter", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms/iter", ns / 1_000_000.0)
    } else {
        format!("{:.3} s/iter", ns / 1_000_000_000.0)
    }
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    sample_size: usize,
    median_ns: f64,
}

/// Target wall-clock spent measuring one benchmark (split over samples).
const MEASURE_TARGET: Duration = Duration::from_millis(200);
const WARMUP_TARGET: Duration = Duration::from_millis(30);

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher { sample_size, median_ns: 0.0 }
    }

    /// Times `routine` (called back-to-back in calibrated batches).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate the per-call cost.
        let mut calls = 0u64;
        let warm = Instant::now();
        while warm.elapsed() < WARMUP_TARGET {
            std::hint::black_box(routine());
            calls += 1;
        }
        let per_call = warm.elapsed().as_secs_f64() / calls as f64;

        let per_sample = MEASURE_TARGET.as_secs_f64() / self.sample_size as f64;
        let iters = ((per_sample / per_call.max(1e-9)) as u64).clamp(1, 1_000_000_000);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            samples.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.median_ns = median(&mut samples);
    }

    /// Times `routine` on fresh inputs from `setup`; setup is untimed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut samples = Vec::with_capacity(self.sample_size);
        let budget = Instant::now();
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            samples.push(t.elapsed().as_nanos() as f64);
            // Batched benchmarks (engine runs) are slow; don't let the
            // harness balloon far past the target budget.
            if budget.elapsed() > 10 * MEASURE_TARGET && samples.len() >= 2 {
                break;
            }
        }
        self.median_ns = median(&mut samples);
    }
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = samples.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

/// Re-export for code using `criterion::black_box`.
pub use std::hint::black_box;

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_samples() {
        let mut s = vec![3.0, 1.0, 2.0];
        assert_eq!(median(&mut s), 2.0);
        let mut s = vec![4.0, 1.0, 2.0, 3.0];
        assert_eq!(median(&mut s), 2.5);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("scalar", 64).label, "scalar/64");
        assert_eq!(BenchmarkId::from_parameter(8).label, "8");
    }

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new(3);
        b.iter(|| std::hint::black_box(1u64 + 1));
        assert!(b.median_ns > 0.0);
        let mut b = Bencher::new(3);
        b.iter_batched(|| 21u64, |x| x * 2, BatchSize::PerIteration);
        assert!(b.median_ns >= 0.0);
    }
}
