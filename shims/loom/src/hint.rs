//! Spin-loop hints. Under the model a spin hint must be a scheduling
//! point — otherwise a busy-wait could never observe another thread's
//! progress and every spinning model would diverge.

pub fn spin_loop() {
    crate::thread::yield_now();
}
