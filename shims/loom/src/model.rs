//! The exploration driver: runs the model closure once per schedule,
//! advancing the DFS path between executions until every interleaving
//! (within the preemption bound) has been checked.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crate::rt::Rt;

const DEFAULT_MAX_ITERATIONS: u64 = 500_000;

/// Configures a model-checking run.
///
/// Mirrors the subset of `loom::model::Builder` this workspace uses:
/// `preemption_bound` caps CHESS-style context-switch branching (forced
/// switches and load-value branches are always exhaustive), and
/// `max_iterations` is a runaway backstop (a genuine shim extension —
/// hitting it fails the run rather than silently passing).
pub struct Builder {
    pub preemption_bound: Option<usize>,
    pub max_iterations: u64,
}

impl Default for Builder {
    fn default() -> Self {
        Self::new()
    }
}

impl Builder {
    pub fn new() -> Self {
        let preemption_bound =
            std::env::var("LOOM_MAX_PREEMPTIONS").ok().and_then(|v| v.parse::<usize>().ok());
        let max_iterations = std::env::var("LOOM_MAX_ITERATIONS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(DEFAULT_MAX_ITERATIONS);
        Builder { preemption_bound, max_iterations }
    }

    /// Explores every schedule of `f`. Panics on the first failing
    /// execution (assertion failure, deadlock, or explicit panic inside
    /// the model), reporting how many complete executions preceded it.
    pub fn check<F>(&self, f: F)
    where
        F: Fn() + Sync + Send + 'static,
    {
        let rt = Arc::new(Rt::new(self.preemption_bound, self.max_iterations));
        let mut iterations: u64 = 0;
        loop {
            assert!(
                iterations < rt.max_iterations,
                "loom shim: exceeded {} iterations without exhausting the model; \
                 raise LOOM_MAX_ITERATIONS or shrink the model",
                rt.max_iterations
            );
            rt.begin_iteration(iterations);
            let run = catch_unwind(AssertUnwindSafe(|| {
                f();
                rt.drain(0);
            }));
            if let Err(payload) = run {
                rt.record_panic(payload.as_ref());
            }
            let failure = rt.end_iteration();
            if let Some(msg) = failure {
                panic!("loom model failed after {iterations} complete executions: {msg}");
            }
            iterations += 1;
            if !rt.advance_path() {
                break;
            }
        }
    }
}

/// Checks `f` under every interleaving with the default [`Builder`].
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    Builder::new().check(f);
}
