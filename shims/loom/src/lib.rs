//! Offline drop-in subset of the [loom](https://crates.io/crates/loom)
//! model checker, vendored because this workspace builds without network
//! access.
//!
//! Usage matches real loom: code under test imports its atomics and
//! locks from `loom::sync` when built with `--cfg loom`, and tests wrap
//! concurrent scenarios in [`model`], which runs the closure under every
//! thread interleaving (and every weak-memory read-from choice) that the
//! C11-style vector-clock semantics in [`rt`](crate) admit.
//!
//! Differences from the real crate, all on the conservative side:
//! * SeqCst is modeled as a total order following execution order, which
//!   is slightly stronger than C++20 SC (store-buffering/Dekker outcomes
//!   are exact; some exotic IRIW outcomes are not generated).
//! * `compare_exchange_weak` never fails spuriously.
//! * Exploration is plain DFS with optional CHESS-style preemption
//!   bounding — no partial-order reduction, so keep models small.

mod rt;

pub mod hint;
pub mod model;
pub mod sync;
pub mod thread;

pub use model::model;
