//! Model-checked threads. `spawn` registers a new model thread (its
//! first instruction is a scheduling decision like any other); `join` is
//! a blocking operation the deadlock detector understands.

use std::any::Any;
use std::marker::PhantomData;

use crate::rt;

pub struct JoinHandle<T> {
    id: usize,
    _marker: PhantomData<T>,
}

impl<T: 'static> JoinHandle<T> {
    pub fn join(self) -> std::thread::Result<T> {
        let res = rt::with_rt(|rt, me| rt.join_thread(me, self.id));
        match res {
            Some(boxed) => Ok(*boxed
                .downcast::<T>()
                .expect("loom shim: join result downcast to the spawn closure's return type")),
            None => Err(Box::new("model thread panicked".to_string()) as Box<dyn Any + Send>),
        }
    }
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JoinHandle({})", self.id)
    }
}

pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let id = rt::with_rt(|rt, me| {
        rt.spawn_thread(me, Box::new(move || Box::new(f()) as Box<dyn Any + Send>))
    });
    JoinHandle { id, _marker: PhantomData }
}

/// A plain scheduling point: lets the explorer hand the baton elsewhere.
pub fn yield_now() {
    rt::with_rt(|rt, me| rt.op_yield(me));
}
