//! The model-checking runtime.
//!
//! Three cooperating pieces:
//!
//! * **A baton-passing scheduler.** Model threads are real OS threads, but
//!   exactly one is ever runnable: before every visible operation (an
//!   atomic access, a fence, a lock acquisition/release, a spawn/join) the
//!   running thread reaches a *scheduling point*, consults the explorer
//!   for who runs next, and parks itself if the baton moves. Execution is
//!   therefore fully serialized and — given the same decision sequence —
//!   fully deterministic, which is what makes replay-based DFS possible.
//! * **A DFS path explorer.** Every nondeterministic decision (which
//!   enabled thread runs next, which store a weak load reads) is a branch
//!   recorded on the current *path*. An execution replays the recorded
//!   prefix and extends it with first choices; when it finishes, the
//!   deepest decision with untried alternatives is bumped and everything
//!   after it is discarded. The model has been checked *exhaustively*
//!   (within the optional preemption bound) when no decision has
//!   alternatives left.
//! * **A vector-clock weak-memory model.** Each atomic carries its full
//!   modification order (every store ever made, with the storer's
//!   happens-before clock and its release clock). A load may read any
//!   store not hidden by coherence: nothing older than the last store this
//!   thread has seen of this atomic, and nothing older than the newest
//!   store that happens-before the load. Acquire loads join the store's
//!   release clock; relaxed loads buffer it until an acquire fence;
//!   release fences stamp subsequent relaxed stores; RMWs read the newest
//!   store and continue its release sequence. SeqCst is modeled
//!   conservatively: all SeqCst operations are totally ordered by
//!   execution order through a global SC clock, and a SeqCst load must not
//!   read anything older than the newest SeqCst store to its atomic —
//!   slightly stronger than C++20 SC (it cannot produce some exotic IRIW
//!   outcomes), never weaker on the store-buffering/Dekker patterns the
//!   workspace relies on.
//!
//! Preemption bounding (CHESS-style): schedule branches that take the
//! baton away from a thread that could have continued are *preemptions*;
//! when a bound is set, exploration only branches over schedules with at
//! most that many. Forced switches (the running thread blocked or
//! finished) and load-value branches are always explored in full.

use std::any::Any;
use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::panic_any;
use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

pub(crate) use std::sync::atomic::Ordering;

/// Panic payload used to unwind model threads when an execution aborts
/// (a failure was recorded or the iteration is being torn down). Never
/// reported as a failure itself.
pub(crate) struct AbortToken;

// ---------------------------------------------------------------------------
// Vector clocks
// ---------------------------------------------------------------------------

/// A per-thread vector clock; index = model thread id.
#[derive(Clone, Debug, Default)]
pub(crate) struct VClock(Vec<u64>);

impl VClock {
    fn get(&self, t: usize) -> u64 {
        self.0.get(t).copied().unwrap_or(0)
    }

    fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (i, &v) in other.0.iter().enumerate() {
            if self.0[i] < v {
                self.0[i] = v;
            }
        }
    }

    fn tick(&mut self, t: usize) {
        if self.0.len() <= t {
            self.0.resize(t + 1, 0);
        }
        self.0[t] += 1;
    }

    /// `self` happens-before-or-equals `other` (pointwise ≤).
    fn le(&self, other: &VClock) -> bool {
        self.0.iter().enumerate().all(|(i, &v)| v <= other.get(i))
    }
}

// ---------------------------------------------------------------------------
// DFS path
// ---------------------------------------------------------------------------

/// One recorded decision: `(chosen, alternatives)`.
#[derive(Debug)]
struct Path {
    decisions: Vec<(u32, u32)>,
    pos: usize,
}

impl Path {
    fn new() -> Self {
        Path { decisions: Vec::new(), pos: 0 }
    }

    /// Takes (or records) the next decision among `n` alternatives.
    fn branch(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        if self.pos == self.decisions.len() {
            self.decisions.push((0, n as u32));
        }
        let (chosen, max) = self.decisions[self.pos];
        assert_eq!(
            max as usize, n,
            "loom shim: nondeterministic replay (branch arity changed mid-exploration)"
        );
        self.pos += 1;
        chosen as usize
    }

    /// Advances to the next unexplored leaf; `false` when exhausted.
    fn advance(&mut self) -> bool {
        while let Some((chosen, max)) = self.decisions.pop() {
            if chosen + 1 < max {
                self.decisions.push((chosen + 1, max));
                self.pos = 0;
                return true;
            }
        }
        false
    }
}

// ---------------------------------------------------------------------------
// Objects
// ---------------------------------------------------------------------------

/// One store in an atomic's modification order.
#[derive(Debug)]
struct StoreRec {
    val: u64,
    /// The storer's happens-before clock at the store (coherence:
    /// obscures older stores from any load that has this clock).
    hb: VClock,
    /// What an acquire load of this store joins (release semantics,
    /// release fences, release-sequence continuation).
    rel: VClock,
}

#[derive(Debug)]
struct AtomicObj {
    stores: Vec<StoreRec>,
    /// Index + 1 of the newest SeqCst store (0 = none): a SeqCst load may
    /// not read anything older.
    last_sc: usize,
}

#[derive(Debug)]
struct MutexObj {
    locked: bool,
    clock: VClock,
}

#[derive(Debug)]
struct RwObj {
    writer: bool,
    readers: usize,
    clock: VClock,
}

#[derive(Debug, Default)]
struct CondObj {
    /// Parked waiters as `(thread, mutex object)`.
    waiters: Vec<(usize, usize)>,
}

#[derive(Debug)]
enum Object {
    Atomic(AtomicObj),
    Mutex(MutexObj),
    Rw(RwObj),
    Cond(CondObj),
}

// ---------------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------------

/// What a blocked thread is waiting for. A blocked thread is *enabled*
/// (schedulable) once the condition holds; the scheduler only hands it
/// the baton then, and nothing can run in between, so the condition still
/// holds when it resumes.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Wait {
    MutexFree(usize),
    RwRead(usize),
    RwWrite(usize),
    /// Parked in a condvar wait; never enabled until a notify rewrites
    /// the status to `MutexFree` of the remembered mutex.
    CondNotified(#[allow(dead_code)] usize),
    Join(usize),
}

#[derive(Debug)]
enum Status {
    Ready,
    Blocked(Wait),
    Finished,
}

struct ThreadSt {
    status: Status,
    clock: VClock,
    /// Release clocks of relaxed loads, joined at the next acquire fence.
    acq_pending: VClock,
    /// This thread's clock at its last release fence; stamped onto
    /// subsequent relaxed stores.
    rel_fence: VClock,
    /// Newest store index this thread has observed, per atomic
    /// (coherence floor).
    last_seen: HashMap<usize, usize>,
    /// Value returned by the thread's closure, for `join`.
    result: Option<Box<dyn Any + Send>>,
}

impl ThreadSt {
    fn new(clock: VClock) -> Self {
        ThreadSt {
            status: Status::Ready,
            clock,
            acq_pending: VClock::default(),
            rel_fence: VClock::default(),
            last_seen: HashMap::new(),
            result: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Global state
// ---------------------------------------------------------------------------

struct State {
    /// Iteration number, used to tag lazily-registered object ids.
    iteration: u64,
    path: Path,
    threads: Vec<ThreadSt>,
    current: usize,
    objects: Vec<Object>,
    sc_clock: VClock,
    preemptions: usize,
    abort: bool,
    failure: Option<String>,
    unfinished: usize,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

pub(crate) struct Rt {
    state: StdMutex<State>,
    cv: StdCondvar,
    preemption_bound: Option<usize>,
    pub(crate) max_iterations: u64,
}

thread_local! {
    static TLS: RefCell<Option<(Arc<Rt>, usize)>> = const { RefCell::new(None) };
}

/// The current model runtime and thread id; panics outside `loom::model`.
pub(crate) fn with_rt<R>(f: impl FnOnce(&Arc<Rt>, usize) -> R) -> R {
    TLS.with(|t| {
        let b = t.borrow();
        let (rt, me) = b.as_ref().expect("loom synchronization primitive used outside loom::model");
        f(rt, *me)
    })
}

pub(crate) fn try_rt() -> Option<(Arc<Rt>, usize)> {
    TLS.with(|t| t.borrow().clone())
}

fn set_tls(v: Option<(Arc<Rt>, usize)>) {
    TLS.with(|t| *t.borrow_mut() = v);
}

fn panic_message(p: &(dyn Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

// ---------------------------------------------------------------------------
// Object-id cells
// ---------------------------------------------------------------------------

/// Maps a primitive to its model object, lazily re-registered each
/// iteration. Packs `(iteration + 1) << 24 | id` into one word; tag 0
/// means "never registered".
pub(crate) struct ObjCell(StdAtomicU64);

const ID_BITS: u64 = 24;

impl ObjCell {
    pub(crate) const fn new() -> Self {
        ObjCell(StdAtomicU64::new(0))
    }

    fn resolve(&self, st: &mut State, me: usize, make: impl FnOnce(VClock) -> Object) -> usize {
        let v = self.0.load(StdOrdering::Relaxed);
        if v >> ID_BITS == st.iteration + 1 {
            return (v & ((1 << ID_BITS) - 1)) as usize;
        }
        let id = st.objects.len();
        assert!(id < (1 << ID_BITS) as usize, "loom shim: too many model objects");
        let clock = st.threads[me].clock.clone();
        st.objects.push(make(clock));
        self.0.store(((st.iteration + 1) << ID_BITS) | id as u64, StdOrdering::Relaxed);
        id
    }
}

fn make_atomic(init: u64) -> impl FnOnce(VClock) -> Object {
    move |clock| {
        Object::Atomic(AtomicObj {
            stores: vec![StoreRec { val: init, hb: clock.clone(), rel: clock }],
            last_sc: 0,
        })
    }
}

fn make_mutex(clock: VClock) -> Object {
    Object::Mutex(MutexObj { locked: false, clock })
}

fn make_rw(clock: VClock) -> Object {
    Object::Rw(RwObj { writer: false, readers: 0, clock })
}

fn make_cond(_clock: VClock) -> Object {
    Object::Cond(CondObj::default())
}

macro_rules! obj {
    ($st:expr, $id:expr, $variant:ident) => {
        match &mut $st.objects[$id] {
            Object::$variant(o) => o,
            other => panic!("loom shim: object {} used as two kinds: {:?}", $id, other),
        }
    };
}

// ---------------------------------------------------------------------------
// Scheduler core
// ---------------------------------------------------------------------------

fn is_enabled(st: &State, i: usize) -> bool {
    match st.threads[i].status {
        Status::Ready => true,
        Status::Finished => false,
        Status::Blocked(w) => match w {
            Wait::MutexFree(o) => match &st.objects[o] {
                Object::Mutex(m) => !m.locked,
                _ => unreachable!(),
            },
            Wait::RwRead(o) => match &st.objects[o] {
                Object::Rw(rw) => !rw.writer,
                _ => unreachable!(),
            },
            Wait::RwWrite(o) => match &st.objects[o] {
                Object::Rw(rw) => !rw.writer && rw.readers == 0,
                _ => unreachable!(),
            },
            Wait::CondNotified(_) => false,
            Wait::Join(t) => matches!(st.threads[t].status, Status::Finished),
        },
    }
}

type Guard<'a> = StdMutexGuard<'a, State>;

impl Rt {
    pub(crate) fn new(preemption_bound: Option<usize>, max_iterations: u64) -> Self {
        Rt {
            state: StdMutex::new(State {
                iteration: 0,
                path: Path::new(),
                threads: Vec::new(),
                current: 0,
                objects: Vec::new(),
                sc_clock: VClock::default(),
                preemptions: 0,
                abort: false,
                failure: None,
                unfinished: 0,
                os_handles: Vec::new(),
            }),
            cv: StdCondvar::new(),
            preemption_bound,
            max_iterations,
        }
    }

    fn lock(&self) -> Guard<'_> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Parks until the baton returns (or the execution aborts).
    fn park<'a>(&'a self, mut st: Guard<'a>, me: usize) -> Guard<'a> {
        loop {
            if st.abort {
                drop(st);
                panic_any(AbortToken);
            }
            if st.current == me {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Records a failure and unwinds the calling thread.
    fn fail(&self, st: &mut Guard<'_>, msg: String) -> ! {
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
        st.abort = true;
        self.cv.notify_all();
        panic_any(AbortToken);
    }

    /// Picks who runs the next operation. `me` is the caller (possibly
    /// just blocked or finished).
    fn reschedule(&self, st: &mut Guard<'_>, me: usize) {
        let enabled: Vec<usize> = (0..st.threads.len()).filter(|&i| is_enabled(st, i)).collect();
        if enabled.is_empty() {
            if st.unfinished == 0 {
                return;
            }
            let stuck: Vec<usize> = (0..st.threads.len())
                .filter(|&i| !matches!(st.threads[i].status, Status::Finished))
                .collect();
            self.fail(
                st,
                format!("deadlock: every unfinished thread is blocked (threads {stuck:?})"),
            );
        }
        let me_enabled = enabled.contains(&me);
        let choice = if enabled.len() == 1 {
            enabled[0]
        } else if me_enabled && self.preemption_bound.is_some_and(|b| st.preemptions >= b) {
            // Out of preemptions: the running thread keeps the baton.
            me
        } else {
            enabled[st.path.branch(enabled.len())]
        };
        if me_enabled && choice != me {
            st.preemptions += 1;
        }
        st.current = choice;
    }

    /// A scheduling point before a visible operation. Returns with the
    /// baton held (`current == me`), the thread's clock ticked, and the
    /// state lock held for the caller to apply its operation atomically.
    fn yield_point(&self, me: usize) -> Guard<'_> {
        let mut st = self.lock();
        if st.abort {
            drop(st);
            panic_any(AbortToken);
        }
        debug_assert_eq!(st.current, me, "baton discipline violated");
        self.reschedule(&mut st, me);
        if st.current != me {
            self.cv.notify_all();
            st = self.park(st, me);
        }
        st.threads[me].clock.tick(me);
        st
    }

    /// Blocks `me` on `wait` and hands the baton away; returns once the
    /// scheduler selects `me` again (the wait condition then holds).
    fn block_on<'a>(&'a self, mut st: Guard<'a>, me: usize, wait: Wait) -> Guard<'a> {
        st.threads[me].status = Status::Blocked(wait);
        self.reschedule(&mut st, me);
        self.cv.notify_all();
        st = self.park(st, me);
        st.threads[me].status = Status::Ready;
        st
    }

    // -- atomics ----------------------------------------------------------

    pub(crate) fn register_atomic(&self, cell: &ObjCell, init: u64) {
        let mut st = self.lock();
        let me = st.current;
        cell.resolve(&mut st, me, make_atomic(init));
    }

    /// Joins the global SC clock both ways: all SeqCst operations are
    /// totally ordered by execution order (conservative SC model).
    fn sc_sync(st: &mut Guard<'_>, me: usize) {
        let c = st.threads[me].clock.clone();
        st.sc_clock.join(&c);
        let sc = st.sc_clock.clone();
        st.threads[me].clock.join(&sc);
    }

    pub(crate) fn atomic_load(&self, me: usize, cell: &ObjCell, init: u64, ord: Ordering) -> u64 {
        assert!(
            !matches!(ord, Ordering::Release | Ordering::AcqRel),
            "invalid ordering for an atomic load"
        );
        let mut st = self.yield_point(me);
        let id = cell.resolve(&mut st, me, make_atomic(init));
        let clock = st.threads[me].clock.clone();
        let seen = st.threads[me].last_seen.get(&id).copied();
        let (floor, n) = {
            let a = obj!(st, id, Atomic);
            let mut floor = 0;
            // Coherence: nothing older than the newest store that
            // happens-before this load...
            for i in (0..a.stores.len()).rev() {
                if a.stores[i].hb.le(&clock) {
                    floor = i;
                    break;
                }
            }
            // ...nor older than what this thread has already seen.
            if let Some(seen) = seen {
                floor = floor.max(seen);
            }
            // SC reads-before: an SC load never reads past the newest SC
            // store.
            if ord == Ordering::SeqCst && a.last_sc > 0 {
                floor = floor.max(a.last_sc - 1);
            }
            (floor, a.stores.len() - floor)
        };
        // Which visible store to read is a genuine branch point.
        let pick = if n == 1 { floor } else { floor + st.path.branch(n) };
        let (val, rel) = {
            let a = obj!(st, id, Atomic);
            (a.stores[pick].val, a.stores[pick].rel.clone())
        };
        st.threads[me].last_seen.insert(id, pick);
        match ord {
            Ordering::Acquire | Ordering::SeqCst => st.threads[me].clock.join(&rel),
            _ => st.threads[me].acq_pending.join(&rel),
        }
        if ord == Ordering::SeqCst {
            Self::sc_sync(&mut st, me);
        }
        val
    }

    pub(crate) fn atomic_store(
        &self,
        me: usize,
        cell: &ObjCell,
        init: u64,
        val: u64,
        ord: Ordering,
    ) {
        assert!(
            !matches!(ord, Ordering::Acquire | Ordering::AcqRel),
            "invalid ordering for an atomic store"
        );
        let mut st = self.yield_point(me);
        let id = cell.resolve(&mut st, me, make_atomic(init));
        if ord == Ordering::SeqCst {
            Self::sc_sync(&mut st, me);
        }
        let hb = st.threads[me].clock.clone();
        let rel = match ord {
            Ordering::Release | Ordering::SeqCst => hb.clone(),
            _ => st.threads[me].rel_fence.clone(),
        };
        let a = obj!(st, id, Atomic);
        a.stores.push(StoreRec { val, hb, rel });
        let idx = a.stores.len() - 1;
        if ord == Ordering::SeqCst {
            a.last_sc = idx + 1;
        }
        st.threads[me].last_seen.insert(id, idx);
    }

    /// Read-modify-write: reads the newest store in modification order
    /// (as C++20 requires of RMWs) and continues its release sequence.
    pub(crate) fn atomic_rmw(
        &self,
        me: usize,
        cell: &ObjCell,
        init: u64,
        ord: Ordering,
        f: impl FnOnce(u64) -> u64,
    ) -> u64 {
        let mut st = self.yield_point(me);
        let id = cell.resolve(&mut st, me, make_atomic(init));
        if ord == Ordering::SeqCst {
            Self::sc_sync(&mut st, me);
        }
        let (old, prev_rel, idx) = {
            let a = obj!(st, id, Atomic);
            let s = a.stores.last().expect("atomic has an initial store");
            (s.val, s.rel.clone(), a.stores.len())
        };
        match ord {
            Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst => {
                st.threads[me].clock.join(&prev_rel)
            }
            _ => st.threads[me].acq_pending.join(&prev_rel),
        }
        let hb = st.threads[me].clock.clone();
        let mut rel = match ord {
            Ordering::Release | Ordering::AcqRel | Ordering::SeqCst => hb.clone(),
            _ => st.threads[me].rel_fence.clone(),
        };
        rel.join(&prev_rel); // release-sequence continuation
        let a = obj!(st, id, Atomic);
        a.stores.push(StoreRec { val: f(old), hb, rel });
        if ord == Ordering::SeqCst {
            a.last_sc = idx + 1;
        }
        st.threads[me].last_seen.insert(id, idx);
        old
    }

    /// Strong compare-exchange. A failure is a load of the newest store
    /// with the failure ordering.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn atomic_cas(
        &self,
        me: usize,
        cell: &ObjCell,
        init: u64,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        let mut st = self.yield_point(me);
        let id = cell.resolve(&mut st, me, make_atomic(init));
        let (old, prev_rel, idx) = {
            let a = obj!(st, id, Atomic);
            let s = a.stores.last().expect("atomic has an initial store");
            (s.val, s.rel.clone(), a.stores.len())
        };
        if old != current {
            match failure {
                Ordering::Acquire | Ordering::SeqCst => st.threads[me].clock.join(&prev_rel),
                _ => st.threads[me].acq_pending.join(&prev_rel),
            }
            if failure == Ordering::SeqCst {
                Self::sc_sync(&mut st, me);
            }
            st.threads[me].last_seen.insert(id, idx - 1);
            return Err(old);
        }
        if success == Ordering::SeqCst {
            Self::sc_sync(&mut st, me);
        }
        match success {
            Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst => {
                st.threads[me].clock.join(&prev_rel)
            }
            _ => st.threads[me].acq_pending.join(&prev_rel),
        }
        let hb = st.threads[me].clock.clone();
        let mut rel = match success {
            Ordering::Release | Ordering::AcqRel | Ordering::SeqCst => hb.clone(),
            _ => st.threads[me].rel_fence.clone(),
        };
        rel.join(&prev_rel);
        let a = obj!(st, id, Atomic);
        a.stores.push(StoreRec { val: new, hb, rel });
        if success == Ordering::SeqCst {
            a.last_sc = idx + 1;
        }
        st.threads[me].last_seen.insert(id, idx);
        Ok(old)
    }

    pub(crate) fn fence(&self, me: usize, ord: Ordering) {
        assert!(ord != Ordering::Relaxed, "fence(Relaxed) is invalid");
        let mut st = self.yield_point(me);
        if matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst) {
            let pending = std::mem::take(&mut st.threads[me].acq_pending);
            st.threads[me].clock.join(&pending);
        }
        if ord == Ordering::SeqCst {
            Self::sc_sync(&mut st, me);
        }
        if matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst) {
            st.threads[me].rel_fence = st.threads[me].clock.clone();
        }
    }

    // -- mutex / condvar / rwlock ----------------------------------------

    pub(crate) fn register_obj(&self, cell: &ObjCell, kind: ObjKind) {
        let mut st = self.lock();
        let me = st.current;
        cell.resolve(&mut st, me, kind.maker());
    }

    pub(crate) fn mutex_lock(&self, me: usize, cell: &ObjCell) {
        let mut st = self.yield_point(me);
        let id = cell.resolve(&mut st, me, make_mutex);
        if obj!(st, id, Mutex).locked {
            st = self.block_on(st, me, Wait::MutexFree(id));
        }
        let m = obj!(st, id, Mutex);
        debug_assert!(!m.locked);
        m.locked = true;
        let c = m.clock.clone();
        st.threads[me].clock.join(&c);
    }

    pub(crate) fn mutex_unlock(&self, me: usize, cell: &ObjCell) {
        if std::thread::panicking() {
            // Unwinding (abort or failure): release without scheduling.
            let mut st = self.lock();
            let id = cell.resolve(&mut st, me, make_mutex);
            obj!(st, id, Mutex).locked = false;
            self.cv.notify_all();
            return;
        }
        let mut st = self.yield_point(me);
        let id = cell.resolve(&mut st, me, make_mutex);
        let c = st.threads[me].clock.clone();
        let m = obj!(st, id, Mutex);
        debug_assert!(m.locked);
        m.locked = false;
        m.clock.join(&c);
    }

    pub(crate) fn cond_wait(&self, me: usize, cv_cell: &ObjCell, mutex_cell: &ObjCell) {
        let mut st = self.yield_point(me);
        let cv_id = cv_cell.resolve(&mut st, me, make_cond);
        let m_id = mutex_cell.resolve(&mut st, me, make_mutex);
        // Atomically: release the mutex and park on the condvar.
        let c = st.threads[me].clock.clone();
        let m = obj!(st, m_id, Mutex);
        debug_assert!(m.locked, "condvar wait without holding the mutex");
        m.locked = false;
        m.clock.join(&c);
        obj!(st, cv_id, Cond).waiters.push((me, m_id));
        st = self.block_on(st, me, Wait::CondNotified(cv_id));
        // Notified and scheduled: the mutex is free, reacquire it.
        let m = obj!(st, m_id, Mutex);
        debug_assert!(!m.locked);
        m.locked = true;
        let c = m.clock.clone();
        st.threads[me].clock.join(&c);
    }

    pub(crate) fn cond_notify(&self, me: usize, cv_cell: &ObjCell, all: bool) {
        let mut st = self.yield_point(me);
        let cv_id = cv_cell.resolve(&mut st, me, make_cond);
        let woken: Vec<(usize, usize)> = {
            let cv = obj!(st, cv_id, Cond);
            if all {
                std::mem::take(&mut cv.waiters)
            } else if cv.waiters.is_empty() {
                Vec::new()
            } else {
                // FIFO; which waiter wins the reacquire race is still a
                // scheduling branch.
                vec![cv.waiters.remove(0)]
            }
        };
        for (t, m_id) in woken {
            st.threads[t].status = Status::Blocked(Wait::MutexFree(m_id));
        }
    }

    pub(crate) fn rw_lock(&self, me: usize, cell: &ObjCell, write: bool) {
        let mut st = self.yield_point(me);
        let id = cell.resolve(&mut st, me, make_rw);
        let blocked = {
            let rw = obj!(st, id, Rw);
            if write {
                rw.writer || rw.readers > 0
            } else {
                rw.writer
            }
        };
        if blocked {
            let wait = if write { Wait::RwWrite(id) } else { Wait::RwRead(id) };
            st = self.block_on(st, me, wait);
        }
        let rw = obj!(st, id, Rw);
        if write {
            debug_assert!(!rw.writer && rw.readers == 0);
            rw.writer = true;
        } else {
            debug_assert!(!rw.writer);
            rw.readers += 1;
        }
        let c = rw.clock.clone();
        st.threads[me].clock.join(&c);
    }

    pub(crate) fn rw_unlock(&self, me: usize, cell: &ObjCell, write: bool) {
        if std::thread::panicking() {
            let mut st = self.lock();
            let id = cell.resolve(&mut st, me, make_rw);
            let rw = obj!(st, id, Rw);
            if write {
                rw.writer = false;
            } else {
                rw.readers = rw.readers.saturating_sub(1);
            }
            self.cv.notify_all();
            return;
        }
        let mut st = self.yield_point(me);
        let id = cell.resolve(&mut st, me, make_rw);
        let c = st.threads[me].clock.clone();
        let rw = obj!(st, id, Rw);
        if write {
            debug_assert!(rw.writer);
            rw.writer = false;
        } else {
            debug_assert!(rw.readers > 0);
            rw.readers -= 1;
        }
        rw.clock.join(&c);
    }

    // -- threads ----------------------------------------------------------

    pub(crate) fn spawn_thread(
        self: &Arc<Self>,
        me: usize,
        f: Box<dyn FnOnce() -> Box<dyn Any + Send> + Send>,
    ) -> usize {
        let mut st = self.yield_point(me);
        let id = st.threads.len();
        let mut clock = st.threads[me].clock.clone();
        clock.tick(id);
        st.threads.push(ThreadSt::new(clock));
        st.unfinished += 1;
        let rt = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("loom-{id}"))
            .spawn(move || model_thread_main(rt, id, f))
            .expect("failed to spawn a model thread");
        st.os_handles.push(handle);
        id
    }

    /// Joins a model thread: blocks until it finishes, adopts its final
    /// clock, and takes its result (None if already taken or never set).
    pub(crate) fn join_thread(&self, me: usize, target: usize) -> Option<Box<dyn Any + Send>> {
        let mut st = self.yield_point(me);
        if !matches!(st.threads[target].status, Status::Finished) {
            st = self.block_on(st, me, Wait::Join(target));
        }
        let c = st.threads[target].clock.clone();
        st.threads[me].clock.join(&c);
        st.threads[target].result.take()
    }

    pub(crate) fn op_yield(&self, me: usize) {
        drop(self.yield_point(me));
    }

    fn finish(&self, me: usize, result: Option<Box<dyn Any + Send>>) {
        let mut st = self.lock();
        st.threads[me].status = Status::Finished;
        st.threads[me].result = result;
        st.unfinished -= 1;
        if !st.abort && st.unfinished > 0 {
            // Catching AbortToken here would be wrong: reschedule only
            // fails on deadlock, which must surface.
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.reschedule(&mut st, me);
            }));
            if caught.is_err() {
                // fail() already recorded the deadlock and set abort.
            }
        }
        self.cv.notify_all();
    }

    // -- driver entry points ----------------------------------------------

    pub(crate) fn begin_iteration(self: &Arc<Self>, iteration: u64) {
        let mut st = self.lock();
        st.iteration = iteration;
        st.path.pos = 0;
        st.threads.clear();
        let mut clock = VClock::default();
        clock.tick(0);
        st.threads.push(ThreadSt::new(clock));
        st.current = 0;
        st.objects.clear();
        st.sc_clock = VClock::default();
        st.preemptions = 0;
        st.abort = false;
        st.unfinished = 1;
        debug_assert!(st.os_handles.is_empty());
        drop(st);
        set_tls(Some((Arc::clone(self), 0)));
    }

    /// After the model closure returns on the main thread: join every
    /// thread the closure spawned but never joined.
    pub(crate) fn drain(&self, me: usize) {
        loop {
            let target = {
                let st = self.lock();
                if st.abort {
                    drop(st);
                    panic_any(AbortToken);
                }
                (1..st.threads.len()).find(|&t| !matches!(st.threads[t].status, Status::Finished))
            };
            match target {
                Some(t) => {
                    self.join_thread(me, t);
                }
                None => return,
            }
        }
    }

    /// Records a panic that escaped the main closure and aborts the
    /// execution so parked threads unwind.
    pub(crate) fn record_panic(&self, payload: &(dyn Any + Send)) {
        let mut st = self.lock();
        if !payload.is::<AbortToken>() && st.failure.is_none() {
            st.failure = Some(panic_message(payload));
        }
        st.abort = true;
        self.cv.notify_all();
    }

    /// Ends the iteration: clears the TLS hook and joins the OS threads
    /// (parked ones unwind via the abort flag).
    pub(crate) fn end_iteration(&self) -> Option<String> {
        set_tls(None);
        let handles = std::mem::take(&mut self.lock().os_handles);
        for h in handles {
            let _ = h.join();
        }
        self.lock().failure.take()
    }

    pub(crate) fn advance_path(&self) -> bool {
        self.lock().path.advance()
    }
}

/// What `register_obj` should create.
#[derive(Clone, Copy)]
pub(crate) enum ObjKind {
    Mutex,
    Rw,
    Cond,
}

impl ObjKind {
    fn maker(self) -> fn(VClock) -> Object {
        match self {
            ObjKind::Mutex => make_mutex,
            ObjKind::Rw => make_rw,
            ObjKind::Cond => make_cond,
        }
    }
}

fn model_thread_main(rt: Arc<Rt>, me: usize, f: Box<dyn FnOnce() -> Box<dyn Any + Send> + Send>) {
    set_tls(Some((Arc::clone(&rt), me)));
    // Park until first scheduled; unwind quietly if the iteration aborts
    // before that.
    let parked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let st = rt.lock();
        drop(rt.park(st, me));
    }));
    if parked.is_err() {
        rt.finish(me, None);
        set_tls(None);
        return;
    }
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(val) => rt.finish(me, Some(val)),
        Err(payload) => {
            rt.record_panic(payload.as_ref());
            rt.finish(me, None);
        }
    }
    set_tls(None);
}
