//! Model-checked drop-ins for `std::sync` types.
//!
//! Same shapes as the real loom crate's `loom::sync`: constructors are
//! not `const` (each object registers with the active model so it gets a
//! correct creation clock), locks never poison, and every operation is a
//! scheduling point.

use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::sync::LockResult;

pub use std::sync::Arc;

use crate::rt::{self, ObjCell, ObjKind};

pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use crate::rt::{self, ObjCell};

    /// Issues a memory fence with the given ordering at a scheduling
    /// point.
    pub fn fence(ord: Ordering) {
        rt::with_rt(|rt, me| rt.fence(me, ord));
    }

    fn register(cell: &ObjCell, init: u64) {
        if let Some((rt, _)) = rt::try_rt() {
            rt.register_atomic(cell, init);
        }
    }

    macro_rules! atomic_int {
        ($(#[$meta:meta])* $name:ident, $ty:ty) => {
            $(#[$meta])*
            pub struct $name {
                cell: ObjCell,
                init: u64,
            }

            impl $name {
                #[allow(clippy::unnecessary_cast)]
                pub fn new(v: $ty) -> Self {
                    let s = Self { cell: ObjCell::new(), init: v as u64 };
                    register(&s.cell, s.init);
                    s
                }

                #[allow(clippy::unnecessary_cast)]
                pub fn load(&self, ord: Ordering) -> $ty {
                    rt::with_rt(|rt, me| rt.atomic_load(me, &self.cell, self.init, ord)) as $ty
                }

                #[allow(clippy::unnecessary_cast)]
                pub fn store(&self, val: $ty, ord: Ordering) {
                    rt::with_rt(|rt, me| {
                        rt.atomic_store(me, &self.cell, self.init, val as u64, ord)
                    });
                }

                #[allow(clippy::unnecessary_cast)]
                pub fn swap(&self, val: $ty, ord: Ordering) -> $ty {
                    rt::with_rt(|rt, me| {
                        rt.atomic_rmw(me, &self.cell, self.init, ord, |_| val as u64)
                    }) as $ty
                }

                #[allow(clippy::unnecessary_cast)]
                pub fn fetch_add(&self, val: $ty, ord: Ordering) -> $ty {
                    rt::with_rt(|rt, me| {
                        rt.atomic_rmw(me, &self.cell, self.init, ord, |old| {
                            (old as $ty).wrapping_add(val) as u64
                        })
                    }) as $ty
                }

                #[allow(clippy::unnecessary_cast)]
                pub fn fetch_sub(&self, val: $ty, ord: Ordering) -> $ty {
                    rt::with_rt(|rt, me| {
                        rt.atomic_rmw(me, &self.cell, self.init, ord, |old| {
                            (old as $ty).wrapping_sub(val) as u64
                        })
                    }) as $ty
                }

                #[allow(clippy::unnecessary_cast)]
                pub fn fetch_max(&self, val: $ty, ord: Ordering) -> $ty {
                    rt::with_rt(|rt, me| {
                        rt.atomic_rmw(me, &self.cell, self.init, ord, |old| {
                            <$ty>::max(old as $ty, val) as u64
                        })
                    }) as $ty
                }

                #[allow(clippy::unnecessary_cast)]
                pub fn fetch_or(&self, val: $ty, ord: Ordering) -> $ty {
                    rt::with_rt(|rt, me| {
                        rt.atomic_rmw(me, &self.cell, self.init, ord, |old| {
                            ((old as $ty) | val) as u64
                        })
                    }) as $ty
                }

                #[allow(clippy::unnecessary_cast)]
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    rt::with_rt(|rt, me| {
                        rt.atomic_cas(
                            me,
                            &self.cell,
                            self.init,
                            current as u64,
                            new as u64,
                            success,
                            failure,
                        )
                    })
                    .map(|v| v as $ty)
                    .map_err(|v| v as $ty)
                }

                /// The model treats weak CAS as strong: spurious failure
                /// would only add interleavings equivalent to a plain
                /// failed CAS, which the explorer already covers through
                /// scheduling.
                pub fn compare_exchange_weak(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.compare_exchange(current, new, success, failure)
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(0 as $ty)
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    f.write_str(concat!(stringify!($name), "(..)"))
                }
            }
        };
    }

    atomic_int!(AtomicU64, u64);
    atomic_int!(AtomicU32, u32);
    atomic_int!(AtomicUsize, usize);
    atomic_int!(AtomicI64, i64);

    pub struct AtomicBool {
        cell: ObjCell,
        init: u64,
    }

    impl AtomicBool {
        pub fn new(v: bool) -> Self {
            let s = Self { cell: ObjCell::new(), init: v as u64 };
            register(&s.cell, s.init);
            s
        }

        pub fn load(&self, ord: Ordering) -> bool {
            rt::with_rt(|rt, me| rt.atomic_load(me, &self.cell, self.init, ord)) != 0
        }

        pub fn store(&self, val: bool, ord: Ordering) {
            rt::with_rt(|rt, me| rt.atomic_store(me, &self.cell, self.init, val as u64, ord));
        }

        pub fn swap(&self, val: bool, ord: Ordering) -> bool {
            rt::with_rt(|rt, me| rt.atomic_rmw(me, &self.cell, self.init, ord, |_| val as u64)) != 0
        }

        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            rt::with_rt(|rt, me| {
                rt.atomic_cas(
                    me,
                    &self.cell,
                    self.init,
                    current as u64,
                    new as u64,
                    success,
                    failure,
                )
            })
            .map(|v| v != 0)
            .map_err(|v| v != 0)
        }
    }

    impl Default for AtomicBool {
        fn default() -> Self {
            Self::new(false)
        }
    }

    impl std::fmt::Debug for AtomicBool {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("AtomicBool(..)")
        }
    }

    pub struct AtomicPtr<T> {
        cell: ObjCell,
        init: u64,
        _marker: std::marker::PhantomData<*mut T>,
    }

    // Same bounds as std's AtomicPtr: the pointer value itself is plain
    // data; what it points at is the user's problem.
    unsafe impl<T> Send for AtomicPtr<T> {}
    unsafe impl<T> Sync for AtomicPtr<T> {}

    impl<T> AtomicPtr<T> {
        pub fn new(p: *mut T) -> Self {
            let s = Self {
                cell: ObjCell::new(),
                init: p as usize as u64,
                _marker: std::marker::PhantomData,
            };
            register(&s.cell, s.init);
            s
        }

        pub fn load(&self, ord: Ordering) -> *mut T {
            rt::with_rt(|rt, me| rt.atomic_load(me, &self.cell, self.init, ord)) as usize as *mut T
        }

        pub fn store(&self, p: *mut T, ord: Ordering) {
            rt::with_rt(|rt, me| {
                rt.atomic_store(me, &self.cell, self.init, p as usize as u64, ord)
            });
        }

        pub fn swap(&self, p: *mut T, ord: Ordering) -> *mut T {
            rt::with_rt(|rt, me| {
                rt.atomic_rmw(me, &self.cell, self.init, ord, |_| p as usize as u64)
            }) as usize as *mut T
        }

        pub fn compare_exchange(
            &self,
            current: *mut T,
            new: *mut T,
            success: Ordering,
            failure: Ordering,
        ) -> Result<*mut T, *mut T> {
            rt::with_rt(|rt, me| {
                rt.atomic_cas(
                    me,
                    &self.cell,
                    self.init,
                    current as usize as u64,
                    new as usize as u64,
                    success,
                    failure,
                )
            })
            .map(|v| v as usize as *mut T)
            .map_err(|v| v as usize as *mut T)
        }
    }

    impl<T> Default for AtomicPtr<T> {
        fn default() -> Self {
            Self::new(std::ptr::null_mut())
        }
    }

    impl<T> std::fmt::Debug for AtomicPtr<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("AtomicPtr(..)")
        }
    }
}

// ---------------------------------------------------------------------------
// Mutex + Condvar
// ---------------------------------------------------------------------------

pub struct Mutex<T: ?Sized> {
    cell: ObjCell,
    data: UnsafeCell<T>,
}

unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    pub fn new(data: T) -> Self {
        let s = Mutex { cell: ObjCell::new(), data: UnsafeCell::new(data) };
        if let Some((rt, _)) = rt::try_rt() {
            rt.register_obj(&s.cell, ObjKind::Mutex);
        }
        s
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        rt::with_rt(|rt, me| rt.mutex_lock(me, &self.cell));
        Ok(MutexGuard { lock: self })
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Mutex(..)")
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some((rt, me)) = rt::try_rt() {
            rt.mutex_unlock(me, &self.lock.cell);
        }
    }
}

pub struct Condvar {
    cell: ObjCell,
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl Condvar {
    pub fn new() -> Self {
        let s = Condvar { cell: ObjCell::new() };
        if let Some((rt, _)) = rt::try_rt() {
            rt.register_obj(&s.cell, ObjKind::Cond);
        }
        s
    }

    pub fn wait<'a, T: ?Sized>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let lock = guard.lock;
        // The runtime releases and reacquires the mutex itself; the
        // guard must not run its unlock on this path.
        std::mem::forget(guard);
        rt::with_rt(|rt, me| rt.cond_wait(me, &self.cell, &lock.cell));
        Ok(MutexGuard { lock })
    }

    pub fn notify_one(&self) {
        rt::with_rt(|rt, me| rt.cond_notify(me, &self.cell, false));
    }

    pub fn notify_all(&self) {
        rt::with_rt(|rt, me| rt.cond_notify(me, &self.cell, true));
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Condvar(..)")
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

pub struct RwLock<T: ?Sized> {
    cell: ObjCell,
    data: UnsafeCell<T>,
}

unsafe impl<T: ?Sized + Send> Send for RwLock<T> {}
unsafe impl<T: ?Sized + Send + Sync> Sync for RwLock<T> {}

impl<T> RwLock<T> {
    pub fn new(data: T) -> Self {
        let s = RwLock { cell: ObjCell::new(), data: UnsafeCell::new(data) };
        if let Some((rt, _)) = rt::try_rt() {
            rt.register_obj(&s.cell, ObjKind::Rw);
        }
        s
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        rt::with_rt(|rt, me| rt.rw_lock(me, &self.cell, false));
        Ok(RwLockReadGuard { lock: self, _not_send: PhantomData })
    }

    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        rt::with_rt(|rt, me| rt.rw_lock(me, &self.cell, true));
        Ok(RwLockWriteGuard { lock: self, _not_send: PhantomData })
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RwLock(..)")
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    _not_send: PhantomData<*const ()>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if let Some((rt, me)) = rt::try_rt() {
            rt.rw_unlock(me, &self.lock.cell, false);
        }
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    _not_send: PhantomData<*const ()>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if let Some((rt, me)) = rt::try_rt() {
            rt.rw_unlock(me, &self.lock.cell, true);
        }
    }
}
