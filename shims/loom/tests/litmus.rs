//! Litmus tests for the shim's own memory model: each classic pattern is
//! checked twice — once with orderings that forbid the weak outcome (the
//! model must pass) and once with orderings that admit it (the model
//! must find it, asserted via `#[should_panic]`). A model checker that
//! cannot reproduce the bugs it exists to catch is worthless, so these
//! double as the shim's certification suite.

use std::sync::atomic::Ordering::{Acquire, Relaxed, Release, SeqCst};

use loom::sync::atomic::{fence, AtomicU64};
use loom::sync::{Arc, Condvar, Mutex};
use loom::thread;

/// Message passing, correct: Release store of the flag after the data
/// store; Acquire load of the flag before the data load. The stale-data
/// outcome must be impossible.
#[test]
fn mp_release_acquire_passes() {
    loom::model(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d.store(42, Relaxed);
            f.store(1, Release);
        });
        if flag.load(Acquire) == 1 {
            assert_eq!(data.load(Relaxed), 42, "acquire saw the flag but not the data");
        }
        t.join().unwrap();
    });
}

/// Message passing, broken: with a Relaxed flag there is no
/// synchronizes-with edge, so the reader may see the flag without the
/// data. The model must construct that execution.
#[test]
#[should_panic(expected = "acquire saw the flag but not the data")]
fn mp_relaxed_flag_caught() {
    loom::model(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d.store(42, Relaxed);
            f.store(1, Relaxed);
        });
        if flag.load(Acquire) == 1 {
            assert_eq!(data.load(Relaxed), 42, "acquire saw the flag but not the data");
        }
        t.join().unwrap();
    });
}

/// Message passing via fences: Relaxed accesses bracketed by a Release
/// fence (writer) and an Acquire fence (reader) restore the edge.
#[test]
fn mp_fence_pair_passes() {
    loom::model(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d.store(42, Relaxed);
            fence(Release);
            f.store(1, Relaxed);
        });
        if flag.load(Relaxed) == 1 {
            fence(Acquire);
            assert_eq!(data.load(Relaxed), 42, "fence pair failed to synchronize");
        }
        t.join().unwrap();
    });
}

/// Store buffering (Dekker), correct: with SeqCst on all four accesses
/// at least one thread must see the other's store.
#[test]
fn sb_seqcst_passes() {
    loom::model(|| {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = thread::spawn(move || {
            x2.store(1, SeqCst);
            y2.load(SeqCst)
        });
        y.store(1, SeqCst);
        let saw_x = x.load(SeqCst);
        let saw_y = t.join().unwrap();
        assert!(saw_x == 1 || saw_y == 1, "SC forbids both Dekker loads reading 0");
    });
}

/// Store buffering, broken: Release/Acquire alone admits the both-zero
/// outcome. The model must find it.
#[test]
#[should_panic(expected = "both Dekker loads read 0")]
fn sb_release_acquire_caught() {
    loom::model(|| {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = thread::spawn(move || {
            x2.store(1, Release);
            y2.load(Acquire)
        });
        y.store(1, Release);
        let saw_x = x.load(Acquire);
        let saw_y = t.join().unwrap();
        assert!(saw_x == 1 || saw_y == 1, "both Dekker loads read 0");
    });
}

/// Coherence: after a thread reads a store it may not later read an
/// older one (per-location total order).
#[test]
fn coherence_no_backwards_reads() {
    loom::model(|| {
        let x = Arc::new(AtomicU64::new(0));
        let x2 = Arc::clone(&x);
        let t = thread::spawn(move || {
            x2.store(1, Relaxed);
            x2.store(2, Relaxed);
        });
        let a = x.load(Relaxed);
        let b = x.load(Relaxed);
        assert!(b >= a, "coherence violation: read {b} after {a}");
        t.join().unwrap();
    });
}

/// RMWs read the newest store in modification order: two concurrent
/// fetch_adds never lose an increment.
#[test]
fn rmw_no_lost_update() {
    loom::model(|| {
        let x = Arc::new(AtomicU64::new(0));
        let x2 = Arc::clone(&x);
        let t = thread::spawn(move || {
            x2.fetch_add(1, Relaxed);
        });
        x.fetch_add(1, Relaxed);
        t.join().unwrap();
        assert_eq!(x.load(Relaxed), 2, "lost update through concurrent RMWs");
    });
}

/// Release-sequence continuation: a Relaxed RMW between a Release store
/// and an Acquire load must not break the synchronizes-with edge.
#[test]
fn release_sequence_through_rmw() {
    loom::model(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
        let (f2,) = (Arc::clone(&flag),);
        let t1 = thread::spawn(move || {
            d.store(7, Relaxed);
            f.store(1, Release);
        });
        let t2 = thread::spawn(move || {
            f2.fetch_add(1, Relaxed);
        });
        if flag.load(Acquire) == 2 {
            // Read the RMW that extended the release sequence.
            assert_eq!(data.load(Relaxed), 7, "release sequence broken by relaxed RMW");
        }
        t1.join().unwrap();
        t2.join().unwrap();
    });
}

/// Mutexes serialize: unlock synchronizes-with the next lock, so a
/// plain counter behind a mutex never loses updates.
#[test]
fn mutex_counter() {
    loom::model(|| {
        let n = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    *n.lock().unwrap() += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*n.lock().unwrap(), 2);
    });
}

/// Self-deadlock is detected and reported rather than hanging.
#[test]
#[should_panic(expected = "deadlock")]
fn deadlock_detected() {
    loom::model(|| {
        let m = Mutex::new(());
        let _g1 = m.lock().unwrap();
        let _g2 = m.lock().unwrap();
    });
}

/// Condvar: a waiter that checks its predicate under the mutex never
/// misses a notify issued while the mutex is held.
#[test]
fn condvar_no_lost_wakeup() {
    loom::model(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock().unwrap();
            *ready = true;
            cv.notify_all();
            drop(ready);
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock().unwrap();
        while !*ready {
            ready = cv.wait(ready).unwrap();
        }
        drop(ready);
        t.join().unwrap();
    });
}

/// Seqlock, writer missing its Release fence: a reader can accept a torn
/// (mixed-generation) payload pair. This is the exact shape of the
/// ordercache bug this PR fixes; the model must catch it.
#[test]
#[should_panic(expected = "torn seqlock read")]
fn seqlock_missing_writer_fence_caught() {
    seqlock_model(false);
}

/// Seqlock, correct writer (Release fence between the odd CAS and the
/// data stores): the two-version-read protocol rejects every torn pair.
#[test]
fn seqlock_with_writer_fence_passes() {
    seqlock_model(true);
}

fn seqlock_model(writer_fence: bool) {
    loom::model(move || {
        let version = Arc::new(AtomicU64::new(0));
        let a = Arc::new(AtomicU64::new(100));
        let b = Arc::new(AtomicU64::new(200));
        let (v2, a2, b2) = (Arc::clone(&version), Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            if v2.compare_exchange(0, 1, Acquire, Relaxed).is_ok() {
                if writer_fence {
                    fence(Release);
                }
                a2.store(101, Relaxed);
                b2.store(201, Relaxed);
                v2.store(2, Release);
            }
        });
        // Crossbeam-style reader: version, data (Relaxed), Acquire
        // fence, version re-check.
        let v1 = version.load(Acquire);
        let av = a.load(Relaxed);
        let bv = b.load(Relaxed);
        fence(Acquire);
        let consistent = v1 & 1 == 0 && version.load(Acquire) == v1;
        if consistent {
            assert_eq!(av + 100, bv, "torn seqlock read: ({av}, {bv}) accepted");
        }
        t.join().unwrap();
    });
}
