//! Slice sampling helpers (`rand::seq` subset).

use crate::{Rng, RngCore};

/// `shuffle` / `choose` on slices, as in `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order (astronomically unlikely)");
    }

    #[test]
    fn choose_handles_empty_and_full() {
        let mut rng = StdRng::seed_from_u64(10);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let one = [42u8];
        assert_eq!(one.choose(&mut rng), Some(&42));
    }
}
