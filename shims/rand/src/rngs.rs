//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// Deterministic 64-bit generator (xoshiro256++), seeded via SplitMix64.
///
/// Stands in for `rand::rngs::StdRng`; every consumer in this workspace
/// seeds it with `seed_from_u64`, so cross-version stream compatibility
/// with the real crate is not required — only self-consistency.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.s = s;
        result
    }
}
