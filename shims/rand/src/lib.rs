//! Offline drop-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, fully deterministic implementation of the API surface
//! it actually consumes: [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — not the real
//! `StdRng` (ChaCha12), but statistically solid for workload generation and
//! reproducible from a seed, which is all the experiments require.

use std::ops::{Range, RangeInclusive};

pub mod rngs;
pub mod seq;

/// Core entropy source: 64 fresh bits per call.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding — only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    /// Deterministically builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64` in `[0, 1)`, full-range integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform sample from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard {
    /// Draws one value from the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free bounded sample; the tiny modulo bias is irrelevant for
/// workload generation (spans are far below 2⁶⁴).
fn bounded(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    rng.next_u64() % span
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: every value is fair game.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded(rng, span) as i128) as $t
            }
        }
    )*};
}

int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    /// The upper endpoint itself has measure zero under the uniform
    /// distribution; inclusive float ranges are sampled like half-open
    /// ones, except that a degenerate `x..=x` range is allowed.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_f64_and_bool_probabilities() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "p=0.3 got {hits}/10000");
        for _ in 0..100 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn covers_small_ranges_uniformly() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [0usize; 4];
        for _ in 0..4000 {
            seen[rng.gen_range(0..4usize)] += 1;
        }
        for (i, &n) in seen.iter().enumerate() {
            assert!(n > 700, "bucket {i} underrepresented: {n}");
        }
    }
}
