//! DMT(k): the decentralized protocol over simulated sites (Section V-B).
//!
//! The same workload is scheduled over 1, 2, 4 and 8 sites; the run
//! reports acceptance, message counts, the effect of the lock-retention
//! optimization, and the size of the per-operation lock sets (the paper's
//! "at most three or four objects").
//!
//! Run with: `cargo run --release --example distributed`

use mdts::dist::{DmtConfig, DmtScheduler};
use mdts::model::MultiStepConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cfg = MultiStepConfig { n_txns: 12, n_items: 32, max_ops: 4, ..Default::default() };
    let mut rng = StdRng::seed_from_u64(2026);
    let log = cfg.generate(&mut rng);
    println!("workload: {} transactions, {} operations\n", log.transactions().len(), log.len());

    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>9}",
        "sites", "accepted", "messages", "fetches", "retained", "locks/op", "syncs"
    );
    for n_sites in [1u32, 2, 4, 8] {
        for retain in [false, true] {
            let mut dmt =
                DmtScheduler::new(DmtConfig { retain_locks: retain, ..DmtConfig::new(3, n_sites) });
            let accepted = dmt.recognize(&log).is_ok();
            let s = dmt.stats();
            println!(
                "{:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>9}{}",
                n_sites,
                if accepted { "yes" } else { "no" },
                s.messages,
                s.remote_fetches,
                s.retained,
                s.max_locks_per_op,
                s.syncs,
                if retain { "  (lock retention on)" } else { "" },
            );
        }
    }
    println!(
        "\nOne site sends no data messages at all; message volume grows with \
         the number of sites\nand shrinks again with the paper's lock-retention \
         optimization (Section V-B-2)."
    );
}
