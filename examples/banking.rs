//! A concurrent banking workload across every protocol in the engine.
//!
//! Forty accounts, four client threads moving money (plus read-only
//! audits); the total balance is a serializability invariant. The run
//! prints commits, aborts, blocked waits and throughput per protocol —
//! the engine-level counterpart of the paper's degree-of-concurrency
//! argument.
//!
//! Run with: `cargo run --release --example banking`

use mdts::engine::{
    run_bank_mix, BankConfig, BasicToCc, CompositeCc, ConcurrencyControl, IntervalCc, MtCc, OccCc,
    TwoPlCc,
};

fn protocols() -> Vec<Box<dyn ConcurrencyControl>> {
    vec![
        Box::new(MtCc::new(3)),
        Box::new(CompositeCc::new(3)),
        Box::new(TwoPlCc::new()),
        Box::new(BasicToCc::new(false)),
        Box::new(BasicToCc::new(true)),
        Box::new(OccCc::new()),
        Box::new(IntervalCc::new()),
    ]
}

fn main() {
    let cfg = BankConfig {
        accounts: 40,
        threads: 4,
        txns_per_thread: 500,
        zipf_theta: 0.9,
        read_only_fraction: 0.25,
        ..Default::default()
    };
    println!(
        "banking: {} accounts, {} threads x {} txns, Zipf({}) hot accounts\n",
        cfg.accounts, cfg.threads, cfg.txns_per_thread, cfg.zipf_theta
    );
    println!(
        "{:<10} {:>8} {:>8} {:>9} {:>9} {:>12} {:>10}",
        "protocol", "commits", "aborts", "blocked", "ignored", "txn/s", "invariant"
    );
    for cc in protocols() {
        let r = run_bank_mix(cc, &cfg);
        println!(
            "{:<10} {:>8} {:>8} {:>9} {:>9} {:>12.0} {:>10}",
            r.protocol,
            r.metrics.commits,
            r.metrics.aborts,
            r.metrics.blocked_waits,
            r.metrics.ignored_writes,
            r.throughput,
            if r.invariant_holds() { "ok" } else { "VIOLATED" },
        );
        assert!(r.invariant_holds(), "{}: serializability violated!", r.protocol);
    }
    println!("\nall protocols conserved the total balance.");
}
