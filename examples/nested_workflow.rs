//! Nested transactions with MT(k₁, k₂) (Section V-A).
//!
//! A document-processing workflow: two departments (groups) whose internal
//! steps run concurrently. Intra-department conflicts are ordered by
//! transaction timestamps; cross-department conflicts by group timestamps
//! only — and once Editing precedes Publishing, no later conflict may
//! invert the departments.
//!
//! Run with: `cargo run --example nested_workflow`

use mdts::model::{ItemId, Log, TxId};
use mdts::nested::{GroupId, NestedScheduler, Partition};

fn main() {
    // Departments: Editing = {T1, T2}, Publishing = {T3, T4}.
    let partition = Partition::from_pairs([
        (TxId(1), GroupId(1)),
        (TxId(2), GroupId(1)),
        (TxId(3), GroupId(2)),
        (TxId(4), GroupId(2)),
    ]);
    let mut sched = NestedScheduler::new(2, 2, partition);

    // draft, toc, layout, index
    let log = Log::parse("R1[draft] R2[toc] W2[draft] R3[draft] W3[layout] R4[layout] W4[index]")
        .expect("valid notation");
    println!("workflow log: {log}\n");

    match sched.recognize(&log) {
        Ok(()) => println!("accepted: departments serialize cleanly"),
        Err(pos) => println!("rejected at {pos}"),
    }

    println!("\ngroup timestamps:");
    for g in [GroupId(0), GroupId(1), GroupId(2)] {
        if let Some(ts) = sched.group_ts(g) {
            println!("  GS({}) = {ts}", g.0);
        }
    }
    println!("transaction timestamps (within groups):");
    for t in 1..=4u32 {
        if let Some(ts) = sched.tx_ts(TxId(t)) {
            println!("  TS({t}) = {ts}");
        }
    }

    // Editing already precedes Publishing (T2's draft flowed into T3's
    // layout). A late attempt to push publishing output back into editing
    // would invert the groups — the scheduler must refuse it.
    println!("\nlate reverse flow: T4 reads 'notes', then T1 (Editing) rewrites it…");
    assert!(sched.read(TxId(4), ItemId(9)).is_accept());
    let d = sched.write(TxId(1), ItemId(9));
    println!(
        "  W1[notes] → {}",
        if d.is_accept() {
            "accepted (?!)".to_string()
        } else {
            "rejected: would imply Publishing → Editing".to_string()
        }
    );
    assert!(!d.is_accept(), "group antisymmetry must hold");
}
