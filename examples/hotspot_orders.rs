//! Hot items and the optimized right-end encoding (Section III-D-5).
//!
//! An order-processing workload where a few catalog rows are read by
//! almost every transaction (Zipf skew). The normal encoding makes every
//! access of a hot item chain the vectors into a near-total order; the
//! optimized encoding pushes those dependencies toward the right end of
//! the vectors, keeping bystanders unordered and acceptance higher.
//!
//! Run with: `cargo run --release --example hotspot_orders`

use mdts::core::{recognize, HotEncoding, MtOptions, MtScheduler};
use mdts::model::{MultiStepConfig, WorkloadKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn acceptance(cfg: &MultiStepConfig, k: usize, hot: Option<HotEncoding>, trials: u64) -> f64 {
    let mut accepted = 0u64;
    for seed in 0..trials {
        let mut rng = StdRng::seed_from_u64(seed);
        let log = cfg.generate(&mut rng);
        let opts = MtOptions { hot_encoding: hot, ..MtOptions::new(k) };
        if recognize(&mut MtScheduler::new(opts), &log).accepted {
            accepted += 1;
        }
    }
    accepted as f64 / trials as f64
}

fn main() {
    let trials = 2000;
    println!("order processing: 6 clerks, 24 catalog rows, Zipf-hot best-sellers\n");
    println!(
        "{:>4} {:>12} {:>18} {:>18}",
        "k", "workload", "normal encoding", "right-end encoding"
    );
    for kind in [WorkloadKind::Uniform, WorkloadKind::Hotspot] {
        let cfg = kind.config(6, 24);
        for k in [2usize, 4, 8] {
            let plain = acceptance(&cfg, k, None, trials);
            let hot = acceptance(&cfg, k, Some(HotEncoding { threshold: 3 }), trials);
            println!("{k:>4} {:>12} {:>17.1}% {:>17.1}%", kind.name(), plain * 100.0, hot * 100.0);
        }
    }
    println!(
        "\nThe gap between the two encodings opens on the hotspot workload \
         and with larger k,\nwhere the right-end rule has spare columns to \
         spend (Section III-D-5)."
    );
}
