//! Quickstart: multidimensional timestamps in five minutes.
//!
//! Reproduces the paper's Example 1 interactively: the same interleaving
//! is rejected by a one-dimensional timestamp scheduler and accepted by
//! MT(2), whose vectors keep `T2` and `T3` unordered until the real
//! conflict arrives.
//!
//! Run with: `cargo run --example quickstart`

use mdts::core::{recognize, MtOptions, MtScheduler};
use mdts::graph::serialization_order;
use mdts::model::{Log, TxId};

fn main() {
    // The paper's Example 1 (Section I-A).
    let log = Log::parse("W1[x] W1[y] R3[x] R2[y] R2[y'] W3[y]").expect("valid notation");
    println!("log L = {log}\n");

    // One-dimensional timestamps: T2 and T3 get totally ordered by their
    // first operations, and the late conflict W3[y] after R2[y] is fatal.
    let mut mt1 = MtScheduler::new(MtOptions::new(1));
    let r1 = recognize(&mut mt1, &log);
    println!(
        "MT(1): {}",
        match r1.rejected_at {
            Some(pos) => format!("rejects at position {pos} ({})", log.op(pos)),
            None => "accepts".into(),
        }
    );

    // Two dimensions: the first elements of TS(2) and TS(3) are *equal*,
    // so the order stays open until W3[y] encodes T2 → T3 in dimension 2.
    let mut mt2 = MtScheduler::new(MtOptions::new(2));
    let r2 = recognize(&mut mt2, &log);
    assert!(r2.accepted);
    println!("MT(2): accepts\n");

    println!("final timestamp vectors under MT(2):");
    for tx in log.transactions() {
        println!("  TS({}) = {}", tx.0, mt2.table().ts_expect(tx));
    }

    let order = mt2.table().serial_order(&log.transactions()).expect("accepted logs always sort");
    println!(
        "\nserializability order: {}",
        order.iter().map(|t| format!("T{}", t.0)).collect::<Vec<_>>().join(" ")
    );

    // Cross-check against the conflict-graph serialization order.
    let graph_order = serialization_order(&log).expect("the log is DSR");
    assert_eq!(order.last(), graph_order.last());
    println!("(consistent with the dependency-graph order: {graph_order:?})");

    // And the class landscape for this log:
    let flags = mdts::graph::ClassFlags::compute(&log, 8);
    println!(
        "\nclass membership: DSR = {}, SSR = {}, 2PL = {}, TO(1) = {}",
        flags.dsr, flags.ssr, flags.two_pl, flags.to1
    );
    assert!(!r1.accepted);
    assert!(!flags.to1, "TO(1) agrees with MT(1)");
    let _ = TxId(0);
}
